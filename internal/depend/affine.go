package depend

// aff is an affine function of loop ITERATION indices with polynomial
// coefficients: Base + sum(Coef[L] * t_L), where t_L counts executions
// of loop L's body (t_L = 0 on the first iteration). Working in
// iteration space rather than induction-variable value space makes
// dependence distances iteration distances directly, and makes the
// div/mod folding rule (see evalAff) a plain divisibility check.
//
// ok == false is bottom: the expression is not affine (or not provably
// so), and every dependence question involving it must answer "may".
type aff struct {
	ok   bool
	base poly
	coef map[*loopInfo]poly
}

func affBottom() aff { return aff{} }

func affPoly(p poly) aff { return aff{ok: true, base: p} }

func affConst(c int64) aff { return affPoly(polyConst(c)) }

func (a aff) clone() aff {
	if !a.ok {
		return a
	}
	b := aff{ok: true, base: a.base.clone()}
	if len(a.coef) > 0 {
		b.coef = make(map[*loopInfo]poly, len(a.coef))
		for l, p := range a.coef {
			b.coef[l] = p.clone()
		}
	}
	return b
}

func (a aff) add(b aff) aff {
	if !a.ok || !b.ok {
		return affBottom()
	}
	r := a.clone()
	r.base = r.base.add(b.base)
	for l, p := range b.coef {
		r = r.setCoef(l, r.coefOf(l).add(p))
	}
	return r
}

func (a aff) sub(b aff) aff { return a.add(b.negate()) }

func (a aff) negate() aff {
	if !a.ok {
		return a
	}
	r := aff{ok: true, base: a.base.negate()}
	if len(a.coef) > 0 {
		r.coef = make(map[*loopInfo]poly, len(a.coef))
		for l, p := range a.coef {
			r.coef[l] = p.negate()
		}
	}
	return r
}

// mul multiplies two affine forms; defined only when at least one side
// is loop-invariant (a pure polynomial). iv*iv products are not affine.
func (a aff) mul(b aff) aff {
	if !a.ok || !b.ok {
		return affBottom()
	}
	if len(b.coef) == 0 {
		r := aff{ok: true, base: a.base.mul(b.base)}
		if len(a.coef) > 0 {
			r.coef = make(map[*loopInfo]poly, len(a.coef))
			for l, p := range a.coef {
				r.coef[l] = p.mul(b.base)
			}
		}
		return r
	}
	if len(a.coef) == 0 {
		return b.mul(a)
	}
	return affBottom()
}

func (a aff) coefOf(l *loopInfo) poly {
	if p, ok := a.coef[l]; ok {
		return p
	}
	return poly{}
}

func (a aff) setCoef(l *loopInfo, p poly) aff {
	if p.isZero() {
		delete(a.coef, l)
		return a
	}
	if a.coef == nil {
		a.coef = make(map[*loopInfo]poly)
	}
	a.coef[l] = p
	return a
}

// isInvariant reports that a does not vary with any loop.
func (a aff) isInvariant() bool { return a.ok && len(a.coef) == 0 }

// constVal returns the value of a constant affine form.
func (a aff) constVal() (int64, bool) {
	if !a.isInvariant() {
		return 0, false
	}
	return a.base.constVal()
}

// divMod folds (a div m) or (a mod m) for a literal m > 0. The result
// is affine exactly when every iteration coefficient and every
// non-constant base monomial is divisible by m: then a = m*q + r with r
// the constant remainder, so a div m = q and a mod m = r, both exact.
// (This is how `v/VECTOR_LEN` folds when v steps by VECTOR_LEN — the
// iteration coefficient is step*1 = 4 — while `v%VECTOR_LEN` with a
// unit step stays non-affine and poisons the access, which is the sound
// answer.)
func (a aff) divMod(m int64, mod bool) aff {
	if !a.ok || m <= 0 {
		return affBottom()
	}
	for _, p := range a.coef {
		if !p.divisibleBy(m) {
			return affBottom()
		}
	}
	base := a.base.clone()
	c := base[""]
	delete(base, "")
	if !base.divisibleBy(m) {
		return affBottom()
	}
	// Remainder of the constant term; C semantics on negative operands
	// do not arise (subscripts are non-negative), but floor-divide the
	// constant consistently anyway.
	r := c % m
	if r < 0 {
		r += m
	}
	if mod {
		return affConst(r)
	}
	out := aff{ok: true, base: base.divInt(m)}
	out.base[""] += (c - r) / m
	if len(out.base) > 0 && out.base[""] == 0 {
		delete(out.base, "")
	}
	if len(a.coef) > 0 {
		out.coef = make(map[*loopInfo]poly, len(a.coef))
		for l, p := range a.coef {
			out.coef[l] = p.divInt(m)
		}
	}
	return out
}

// interval is a pair of polynomial bounds lo <= x <= hi (inclusive),
// valid under the all-symbols-non-negative assumption.
type interval struct {
	ok     bool
	lo, hi poly
}

func intervalPoint(p poly) interval { return interval{ok: true, lo: p, hi: p.clone()} }

func (iv interval) add(o interval) interval {
	if !iv.ok || !o.ok {
		return interval{}
	}
	return interval{ok: true, lo: iv.lo.add(o.lo), hi: iv.hi.add(o.hi)}
}

func (iv interval) widen(loExtra, hiExtra int64) interval {
	if !iv.ok {
		return iv
	}
	return interval{ok: true, lo: iv.lo.add(polyConst(loExtra)), hi: iv.hi.add(polyConst(hiExtra))}
}

// mulPoly scales an interval by a polynomial of known sign.
func (iv interval) mulPoly(p poly) interval {
	if !iv.ok {
		return iv
	}
	switch {
	case p.isNonNeg():
		return interval{ok: true, lo: iv.lo.mul(p), hi: iv.hi.mul(p)}
	case p.negate().isNonNeg():
		return interval{ok: true, lo: iv.hi.mul(p), hi: iv.lo.mul(p)}
	}
	return interval{}
}

// provablyBelow reports x < y for all x <= iv.hi when the gap y - hi is
// provably >= 1.
func provablyBelow(hi, y poly) bool { return y.sub(hi).sub(polyConst(1)).isNonNeg() }

// containsZero reports whether 0 may lie in the interval: it returns
// false only when the interval is provably strictly positive or
// strictly negative.
func (iv interval) containsZero() bool {
	if !iv.ok {
		return true
	}
	if iv.lo.sub(polyConst(1)).isNonNeg() { // lo >= 1
		return false
	}
	if iv.hi.negate().sub(polyConst(1)).isNonNeg() { // hi <= -1
		return false
	}
	return true
}
