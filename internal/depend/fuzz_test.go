package depend

// FuzzDepend feeds arbitrary MiniC sources through the analyzer (no
// panics allowed) and, whenever the concrete interpreter from
// enum_test.go can execute the program inside its integer subset,
// cross-checks the report against the enumerated ground truth — the
// same never-under-report contract the fixture harness pins, explored
// over mutated programs.

import (
	"testing"

	"paravis/internal/minic"
)

func FuzzDepend(f *testing.F) {
	seeds := []string{
		stencilSrc, antiSrc, zivSrc, threadShiftSrc, divFoldSrc,
		triangularSrc, predicatedSrc,
		`
void mm(float* A, float* B, float* C, int D) {
  #pragma omp target parallel map(from:C[0:D*D]) map(to:A[0:D*D], B[0:D*D]) num_threads(2)
  {
    int id = omp_get_thread_num();
    int nt = omp_get_num_threads();
    for (int i = id; i < D; i += nt) {
      for (int j = 0; j < D; ++j) {
        float s = 0.0f;
        for (int k = 0; k < D; ++k) {
          s = s + A[i*D + k] * B[k*D + j];
        }
        C[i*D + j] = s;
      }
    }
  }
}
`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		prog, err := minic.Parse(src, minic.Options{})
		if err != nil {
			return
		}
		var fn *minic.FuncDecl
		var ts *minic.TargetStmt
		for _, fd := range prog.Funcs {
			if target := findTarget(fd.Body); target != nil {
				fn, ts = fd, target
				break
			}
		}
		if fn == nil {
			return
		}
		if ts.NumThreads > 8 {
			return // bound the enumeration
		}
		// Duplicate declarations make name-keyed ground truth ambiguous
		// (the analyzer keys arrays by declaration); skip those programs.
		names := map[string]bool{}
		for _, p := range fn.Params {
			if names[p.Name] {
				return
			}
			names[p.Name] = true
		}
		if hasDupDecl(fn.Body, names) {
			return
		}

		env := map[string]int64{}
		for _, p := range fn.Params {
			if !p.Type.IsPointer() {
				env[p.Name] = 5
			}
		}
		rep := Analyze(fn, nil) // must not panic
		events, ok := runEnum(fn, ts, env, 50000)
		if !ok {
			return
		}
		dram := map[string]bool{}
		for _, p := range fn.Params {
			if p.Type.IsPointer() {
				dram[p.Name] = true
			}
		}
		soundCheck(t, "fuzz/symbolic", rep, events, dram)
		soundCheck(t, "fuzz/concrete", Analyze(fn, env), events, dram)
	})
}

func hasDupDecl(b *minic.BlockStmt, names map[string]bool) bool {
	if b == nil {
		return false
	}
	for _, s := range b.Stmts {
		if declStmtDup(s, names) {
			return true
		}
	}
	return false
}

func declStmtDup(s minic.Stmt, names map[string]bool) bool {
	switch st := s.(type) {
	case *minic.DeclStmt:
		if names[st.Name] {
			return true
		}
		names[st.Name] = true
	case *minic.BlockStmt:
		return hasDupDecl(st, names)
	case *minic.ForStmt:
		for _, is := range st.Init {
			if declStmtDup(is, names) {
				return true
			}
		}
		return hasDupDecl(st.Body, names)
	case *minic.IfStmt:
		return hasDupDecl(st.Then, names) || hasDupDecl(st.Else, names)
	case *minic.CriticalStmt:
		return hasDupDecl(st.Body, names)
	case *minic.TargetStmt:
		return hasDupDecl(st.Body, names)
	}
	return false
}
