// Package depend is a static memory-dependence and transformation-
// legality analysis over MiniC loop nests.
//
// It extracts affine access functions for every array read and write in
// the omp target region (induction variables are normalized to their
// iteration index, so dependence distances come out in iterations), and
// answers, per loop, whether any two accesses to the same array can
// touch the same element in different iterations — a loop-carried
// dependence — and at what constant distance where derivable.
//
// The dependence tests form a small lattice, tried in order of
// precision (see solve.go): exact strong-SIV distance folding, a
// symbolic Banerjee-style interval test over polynomial bounds, and a
// thread-distribution congruence test for omp-parallel loops. Anything
// the tests cannot prove is reported as "may": the analysis is sound,
// never optimistic — it may over-report dependences but never
// under-reports one (the brute-force enumeration harness in
// enum_test.go checks exactly this contract).
//
// Three layers consume the results: staticcheck's loop-carried-dep /
// bank-conflict / transform-legality rules, perfbound's RecMII floor
// (via the IR front end in kernel.go), and the advisor's
// legality-gated remedies.
package depend

import (
	"fmt"
	"sort"

	"paravis/internal/minic"
)

// Tri is a three-valued legality verdict.
type Tri int

// Legality verdicts: a transformation is Proven legal, proven Illegal
// (a dependence that forbids it provably exists), or Unknown (the
// analysis could not decide; consumers must treat this as illegal when
// soundness matters, but should say why).
const (
	Unknown Tri = iota
	Proven
	Illegal
)

func (t Tri) String() string {
	switch t {
	case Proven:
		return "proven"
	case Illegal:
		return "illegal"
	}
	return "unknown"
}

// MarshalText makes Tri render as its name in JSON reports.
func (t Tri) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

// Dep is one dependence between two accesses of the same array,
// attributed to the loop that carries it.
type Dep struct {
	Array string `json:"array"`
	// Kind is "flow" (write then read), "anti" (read then write),
	// "output" (write/write) or "flow?" when a write/read pair has an
	// unresolved direction.
	Kind string `json:"kind"`
	// Carried is false for loop-independent (same-iteration) conflicts.
	Carried bool `json:"carried"`
	// Proven marks dependences whose equation was solved exactly;
	// otherwise the dependence merely could not be disproven ("may").
	Proven bool `json:"proven"`
	// Distance is the carrying loop's iteration distance when DistKnown.
	Distance  int64 `json:"distance,omitempty"`
	DistKnown bool  `json:"distance_known"`
	// AllIterations marks a proven dependence whose address does not
	// vary with the carrying loop at all: every iteration pair
	// conflicts, so no single distance exists.
	AllIterations bool `json:"all_iterations,omitempty"`
	// CrossThread marks dependences between iterations executed by
	// different omp threads of a thread-distributed loop.
	CrossThread bool `json:"cross_thread,omitempty"`
	// Line/Col locate the sink access.
	Line int `json:"line"`
	Col  int `json:"col"`
}

// Legality reports which of the paper's GEMM-ladder transformations are
// provably legal for a loop, with the blocking dependence named when
// they are not.
type Legality struct {
	// Unroll (and, equivalently, vectorizing the body's accesses) needs
	// no loop-carried dependence at all.
	Unroll    Tri    `json:"unroll"`
	UnrollWhy string `json:"unroll_why,omitempty"`
	// Tile (strip-mine and reorder within the strip) is reported legal
	// when every carried dependence has a compile-time-constant
	// distance, so a tile size within the minimum distance exists.
	Tile    Tri    `json:"tile"`
	TileWhy string `json:"tile_why,omitempty"`
	// DoubleBuffer (overlap iteration t+1's loads with iteration t's
	// compute) is blocked only by carried flow dependences: anti and
	// output dependences disappear with the renaming the second buffer
	// introduces.
	DoubleBuffer    Tri    `json:"double_buffer"`
	DoubleBufferWhy string `json:"double_buffer_why,omitempty"`
}

// Access is one array access attributed to its innermost enclosing
// loop, with the element stride per iteration of that loop when the
// subscript folds (the bank-conflict rule's input).
type Access struct {
	Array string `json:"array"`
	DRAM  bool   `json:"dram"`
	Write bool   `json:"write"`
	// Width is the number of consecutive scalar elements moved.
	Width int `json:"width"`
	// Stride is the element distance between consecutive iterations of
	// the innermost enclosing loop, valid when StrideKnown.
	Stride      int64 `json:"stride,omitempty"`
	StrideKnown bool  `json:"stride_known"`
	Affine      bool  `json:"affine"`
	Line        int   `json:"line"`
	Col         int   `json:"col"`
}

// LoopDeps is the per-loop analysis result.
type LoopDeps struct {
	// Name is "for@line:col", the join key shared with the lowered IR
	// graph names, perfbound loop reports and simulator stall sites.
	Name  string `json:"loop"`
	Line  int    `json:"line"`
	Col   int    `json:"col"`
	Depth int    `json:"depth"`
	// Unroll is the requested unroll factor (#pragma unroll), 0 if none.
	Unroll int `json:"unroll,omitempty"`
	// ThreadLoop marks loops whose iterations are distributed across
	// omp threads (the induction variable's start depends on
	// omp_get_thread_num()).
	ThreadLoop bool `json:"thread_loop,omitempty"`
	// Affine is false when some array access under the loop had a
	// subscript the analysis could not express affinely; every verdict
	// involving that access is conservatively "may".
	Affine   bool     `json:"affine"`
	Deps     []Dep    `json:"deps,omitempty"`
	Legal    Legality `json:"legality"`
	Accesses []Access `json:"accesses,omitempty"`
}

// Report is the analysis result for one kernel function.
type Report struct {
	Loops []*LoopDeps `json:"loops"`
}

// Loop returns the entry for the named loop ("for@line:col"), or nil.
func (r *Report) Loop(name string) *LoopDeps {
	for _, l := range r.Loops {
		if l.Name == name {
			return l
		}
	}
	return nil
}

// RangeFn is an external range oracle: given an access AST node
// (*minic.Index or *minic.VecLoad) it reports a PROVEN inclusive range
// [lo, hi] of the flattened scalar-word index of the access's first
// element, over every execution of the node, in exactly this package's
// linearization. ok must be false whenever no sound finite range is
// known. internal/absint's Result.IndexRange satisfies this contract.
type RangeFn func(e minic.Expr) (lo, hi int64, ok bool)

// Analyze runs the dependence analysis over fn's omp target region.
// env maps runtime parameters to known values and may be nil (the vet
// path): unknown parameters stay symbolic, and the symbolic tests
// assume only that they are non-negative. A nil target region yields an
// empty report.
func Analyze(fn *minic.FuncDecl, env map[string]int64) *Report {
	return AnalyzeRanges(fn, env, nil)
}

// AnalyzeRanges is Analyze with an optional range oracle: when the
// affine lattice answers "may" for an access pair but the oracle proves
// the two accesses' element footprints disjoint over all executions,
// the pair cannot alias and the dependence is dropped. Only unproven
// ("may") verdicts are ever refined — a proven dependence stands.
func AnalyzeRanges(fn *minic.FuncDecl, env map[string]int64, ranges RangeFn) *Report {
	ts := findTarget(fn.Body)
	if ts == nil {
		return &Report{}
	}
	nt := ts.NumThreads
	if nt <= 0 {
		nt = 1
	}
	w := newWalker(fn, ts, nt, env)
	w.ranges = ranges
	w.block(ts.Body)
	return w.assemble()
}

func findTarget(b *minic.BlockStmt) *minic.TargetStmt {
	if b == nil {
		return nil
	}
	for _, s := range b.Stmts {
		switch st := s.(type) {
		case *minic.TargetStmt:
			return st
		case *minic.BlockStmt:
			if ts := findTarget(st); ts != nil {
				return ts
			}
		}
	}
	return nil
}

// assemble builds the per-loop report from the collected accesses.
func (w *walker) assemble() *Report {
	rep := &Report{}
	for _, l := range w.allLoops {
		ld := &LoopDeps{
			Name:       l.name,
			Line:       l.pos.Line,
			Col:        l.pos.Col,
			Depth:      l.depth,
			Unroll:     l.unroll,
			ThreadLoop: l.threadLoop,
			Affine:     true,
		}
		// Accesses whose innermost loop is l, with their per-iteration
		// stride.
		for _, a := range w.accs {
			if len(a.loops) == 0 || a.loops[len(a.loops)-1] != l {
				continue
			}
			acc := Access{
				Array: a.arr.name, DRAM: a.arr.dram, Write: a.write,
				Width: int(a.width), Affine: a.sub.ok,
				Line: a.pos.Line, Col: a.pos.Col,
			}
			if a.sub.ok {
				if c, ok := a.sub.coefOf(l).constVal(); ok {
					acc.Stride, acc.StrideKnown = c, true
				}
			}
			ld.Accesses = append(ld.Accesses, acc)
		}
		under := w.accessesUnder(l)
		for _, a := range under {
			if !a.sub.ok {
				ld.Affine = false
			}
		}
		ld.Deps = w.loopDeps(l, under)
		ld.Legal = legality(ld)
		rep.Loops = append(rep.Loops, ld)
	}
	sort.SliceStable(rep.Loops, func(i, j int) bool {
		a, b := rep.Loops[i], rep.Loops[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return rep
}

func (w *walker) accessesUnder(l *loopInfo) []*access {
	var out []*access
	for _, a := range w.accs {
		for _, al := range a.loops {
			if al == l {
				out = append(out, a)
				break
			}
		}
	}
	return out
}

// loopDeps runs the carried tests for every same-array access pair
// under l, and the cross-thread test when l distributes iterations over
// omp threads.
func (w *walker) loopDeps(l *loopInfo, under []*access) []Dep {
	seen := map[string]bool{}
	var deps []Dep
	addDep := func(d Dep) {
		key := fmt.Sprintf("%s|%s|%v|%v|%d|%v|%v", d.Array, d.Kind, d.Carried, d.DistKnown, d.Distance, d.CrossThread, d.Proven)
		if !seen[key] {
			seen[key] = true
			deps = append(deps, d)
		}
	}
	for i, f := range under {
		for j := i; j < len(under); j++ {
			g := under[j]
			if f.arr != g.arr || (!f.write && !g.write) {
				continue
			}
			if d, ok := classify(f, g, w.refineMay(f, g, carriedAt(f, g, l, false, w.nt)), false); ok {
				addDep(d)
			}
			// Cross-thread: only mapped DRAM arrays are shared between
			// threads (locals are per-thread BRAM), and accesses inside
			// a critical section are mutex-ordered — the race checker
			// owns those.
			if l.threadLoop && f.arr.dram && !(f.critical && g.critical) {
				if d, ok := classify(f, g, w.refineMay(f, g, carriedAt(f, g, l, true, w.nt)), true); ok {
					addDep(d)
				}
			}
		}
	}
	sort.SliceStable(deps, func(i, j int) bool {
		a, b := deps[i], deps[j]
		if a.Array != b.Array {
			return a.Array < b.Array
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.CrossThread != b.CrossThread {
			return !a.CrossThread
		}
		return a.Distance < b.Distance
	})
	return deps
}

// refineMay flips a "may" verdict to proven-independent when the range
// oracle shows the two accesses' element footprints never overlap: a
// dependence needs a common element, and each access touches only
// [lo, hi+width-1] over its whole execution. Proven dependences and
// pairs the oracle has no finite ranges for pass through unchanged.
func (w *walker) refineMay(f, g *access, r solveRes) solveRes {
	if r.verdict != vMay || w.ranges == nil || f.node == nil || g.node == nil {
		return r
	}
	flo, fhi, ok := w.ranges(f.node)
	if !ok {
		return r
	}
	glo, ghi, ok := w.ranges(g.node)
	if !ok {
		return r
	}
	fend, okF := addNoOv(fhi, f.width-1)
	gend, okG := addNoOv(ghi, g.width-1)
	if !okF || !okG {
		return r
	}
	if fend < glo || gend < flo {
		return solveRes{verdict: vNone}
	}
	return r
}

// addNoOv adds two int64s, failing on overflow.
func addNoOv(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

// classify turns a solver result for the ordered pair (f, g) into a
// reported dependence.
func classify(f, g *access, r solveRes, crossThread bool) (Dep, bool) {
	if r.verdict == vNone {
		return Dep{}, false
	}
	d := Dep{
		Array:       f.arr.name,
		Carried:     true,
		CrossThread: crossThread,
		// A predicated access may not execute, so its dependence can be
		// disproven (the solver assumed it always runs) but never proven.
		Proven: r.verdict == vProven && !f.pred && !g.pred,
		Line:   g.pos.Line,
		Col:    g.pos.Col,
	}
	switch {
	case f.write && g.write:
		d.Kind = "output"
	case f.write: // write f, read g: g at later iteration => flow
		d.Kind = "flow?"
	default: // read f, write g
		d.Kind = "flow?"
	}
	if r.allIters {
		d.AllIterations = true
	}
	if len(r.dists) > 0 {
		// Smallest-magnitude nonzero distance is the binding one.
		best := r.dists[0]
		for _, x := range r.dists {
			if abs64(x) < abs64(best) {
				best = x
			}
		}
		// X is g's iteration minus f's. For a write f and read g,
		// X > 0 means the read happens X iterations after the write:
		// flow. X < 0 is write-after-read: anti. Mirror for read f.
		sign := best
		if !f.write && g.write {
			sign = -best
		}
		if f.write != g.write {
			if sign > 0 {
				d.Kind = "flow"
			} else {
				d.Kind = "anti"
			}
		}
		if len(r.dists) == 1 {
			d.Distance, d.DistKnown = abs64(best), true
		}
	}
	return d, true
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// legality derives the three transformation verdicts from a loop's
// self-carried dependences (cross-thread dependences are a parallelism
// hazard, reported by the loop-carried-dep rule, not a sequential
// transformation blocker).
func legality(ld *LoopDeps) Legality {
	lg := Legality{Unroll: Proven, Tile: Proven, DoubleBuffer: Proven}
	if !ld.Affine {
		why := "non-affine array subscript in loop body"
		return Legality{Unroll: Unknown, UnrollWhy: why, Tile: Unknown, TileWhy: why, DoubleBuffer: Unknown, DoubleBufferWhy: why}
	}
	worse := func(cur Tri, next Tri) Tri {
		// Illegal (a proven blocker) dominates Unknown dominates Proven.
		if cur == Illegal || next == Illegal {
			return Illegal
		}
		if cur == Unknown || next == Unknown {
			return Unknown
		}
		return Proven
	}
	for _, d := range ld.Deps {
		if !d.Carried || d.CrossThread {
			continue
		}
		blocker := describeDep(d)
		// Unroll: any carried dependence blocks; proven ones prove
		// illegality.
		v := Unknown
		if d.Proven {
			v = Illegal
		}
		if nv := worse(lg.Unroll, v); nv != lg.Unroll {
			lg.Unroll, lg.UnrollWhy = nv, blocker
		}
		// Tile: a carried dependence with a known constant distance
		// still admits tiling; unknown or all-iteration distances block.
		if !d.DistKnown {
			tv := Unknown
			if d.Proven && d.AllIterations {
				tv = Illegal
			}
			if nv := worse(lg.Tile, tv); nv != lg.Tile {
				lg.Tile, lg.TileWhy = nv, blocker
			}
		}
		// Double buffering: only flow dependences block.
		if d.Kind == "flow" || d.Kind == "flow?" {
			dv := Unknown
			if d.Proven && d.Kind == "flow" {
				dv = Illegal
			}
			if nv := worse(lg.DoubleBuffer, dv); nv != lg.DoubleBuffer {
				lg.DoubleBuffer, lg.DoubleBufferWhy = nv, blocker
			}
		}
	}
	return lg
}

// Describe renders the dependence for diagnostics and legality
// blockers, e.g. "loop-carried flow dependence on A (distance 1)".
func (d Dep) Describe() string { return describeDep(d) }

// describeDep renders a dependence for legality blockers and
// diagnostics.
func describeDep(d Dep) string {
	kind := d.Kind
	if kind == "flow?" {
		kind = "flow-or-anti"
	}
	var detail string
	switch {
	case d.DistKnown:
		detail = fmt.Sprintf("distance %d", d.Distance)
	case d.AllIterations:
		detail = "all iterations"
	default:
		detail = "unknown distance"
	}
	if !d.Proven {
		return fmt.Sprintf("possible loop-carried %s dependence on %s (%s)", kind, d.Array, detail)
	}
	return fmt.Sprintf("loop-carried %s dependence on %s (%s)", kind, d.Array, detail)
}
