package depend

// This file implements the carried-dependence test lattice. For an
// ordered access pair (f, g) to the same array and a candidate carrying
// loop L, the question is whether
//
//	addr_f(t, tau, inner_f) == addr_g(t + X, tau + sigma, inner_g)
//
// has a solution with the iteration distance X != 0 (or, for the
// cross-thread variant, with the thread-id difference sigma != 0 and X
// free), where L's ancestors hold the same iteration on both sides and
// every inner/disjoint loop index ranges freely over its trip space.
//
// With f and g affine this reduces to membership of A*X (+ Atid*sigma)
// in a polynomial interval I built from the subscript difference, the
// free-variable ranges and the access widths. The tests run from most
// to least precise:
//
//  1. strong SIV: no free terms, point interval => the distance folds
//     exactly (symbolically: A*X == D0 as polynomials), giving a proven
//     dependence with a constant distance — or a proven absence.
//  2. symbolic Banerjee: the interval ends are polynomials over the
//     runtime parameters (assumed non-negative); |A*X| outgrowing the
//     interval bounds a finite candidate set, and an empty set proves
//     absence even when nothing folds to a number (this is what keeps
//     the row-major GEMM seeds clean without knowing DIM).
//  3. thread-congruence: for omp thread-distributed loops the coupled
//     variable Y = s*X + sigma must satisfy a congruence mod s; when no
//     admissible Y survives, no two threads can collide.
//
// Anything outside the lattice answers vMay: sound, never optimistic.

// Solver verdicts.
const (
	vNone   = iota // dependence provably absent
	vProven        // dependence equation solved exactly
	vMay           // cannot disprove
)

type solveRes struct {
	verdict int
	// dists are the surviving values of X (g's iteration minus f's) when
	// the candidate set was enumerated; for vMay they are candidates
	// ("if the dependence exists, its distance is one of these"), for
	// vProven they are exact.
	dists []int64
	// allIters marks a proven dependence whose address ignores L
	// entirely: every iteration pair collides.
	allIters bool
}

const maxBeta = 64

// carriedAt runs the test for the pair (f, g) at loop L. thread selects
// the cross-thread variant; nt is the omp thread count.
func carriedAt(f, g *access, L *loopInfo, thread bool, nt int) solveRes {
	may := solveRes{verdict: vMay}
	if !f.sub.ok || !g.sub.ok {
		return may
	}
	anc := map[*loopInfo]bool{}
	for p := L.parent; p != nil; p = p.parent {
		anc[p] = true
	}
	// Ancestor loops hold the same iteration on both sides: their terms
	// cancel only when the coefficients agree.
	for p := range anc {
		if !f.sub.coefOf(p).equal(g.sub.coefOf(p)) {
			return may
		}
	}
	A := f.sub.coefOf(L)
	if !A.equal(g.sub.coefOf(L)) {
		return may
	}
	fRest, fTid, ok1 := f.sub.base.tidSplit()
	gRest, gTid, ok2 := g.sub.base.tidSplit()
	if !ok1 || !ok2 || !fTid.equal(gTid) {
		return may
	}
	Atid := fTid
	D0 := fRest.sub(gRest)

	// Free variables: loops below L or in disjoint subtrees; each index
	// ranges over [0, iterLast].
	free := interval{ok: true, lo: poly{}, hi: poly{}}
	nFree := 0
	addFree := func(sub aff, negate bool) bool {
		for l2, c := range sub.coef {
			if l2 == L || anc[l2] {
				continue
			}
			u, ok := l2.iterLast()
			if !ok {
				return false
			}
			if negate {
				c = c.negate()
			}
			term := interval{ok: true, lo: poly{}, hi: u}.mulPoly(c)
			if !term.ok {
				return false
			}
			free = free.add(term)
			nFree++
		}
		return true
	}
	if !addFree(f.sub, false) || !addFree(g.sub, true) {
		return may
	}

	// Overlap of [addr_f, addr_f+wf-1] and [addr_g, addr_g+wg-1], after
	// substituting t_g = t_f + X and tau_g = tau_f + sigma:
	//   A*X + Atid*sigma  in  D0 + free + [-(wf-1), wg-1]  =: I
	I := intervalPoint(D0).add(free).widen(-(f.width - 1), g.width-1)
	pointI := nFree == 0 && f.width == 1 && g.width == 1

	if !thread {
		if A.isZero() {
			return zivAt(I, D0, pointI)
		}
		return solveExist(A, I, pointI, D0, func(y int64) bool { return y != 0 })
	}
	// Cross-thread: sigma != 0, X free.
	if Atid.isZero() {
		if A.isZero() {
			return zivAt(I, D0, pointI)
		}
		// Any X, including 0, collides two distinct threads.
		return solveExist(A, I, pointI, D0, func(y int64) bool { return true })
	}
	var s int64
	if !A.isZero() {
		k, ok := A.constMultipleOf(Atid)
		if !ok {
			return may
		}
		s = k
	}
	res := solveExist(Atid, I, pointI, D0, func(y int64) bool { return tidAdmissible(y, s, nt) })
	res.dists = nil // Y mixes sigma and X; no iteration distance to report
	return res
}

// zivAt handles an address that does not vary with the carried
// variable: the dependence exists iff the residual can be zero, and
// when the residual is exactly zero every iteration pair collides.
func zivAt(I interval, D0 poly, pointI bool) solveRes {
	if !I.containsZero() {
		return solveRes{verdict: vNone}
	}
	if pointI {
		if z, ok := D0.constVal(); ok && z == 0 {
			return solveRes{verdict: vProven, allIters: true}
		}
		if D0.isZero() {
			return solveRes{verdict: vProven, allIters: true}
		}
	}
	return solveRes{verdict: vMay}
}

// tidAdmissible reports whether Y = s*X + sigma is reachable with
// sigma in ±[1, nt-1] and X any integer.
func tidAdmissible(y, s int64, nt int) bool {
	lim := int64(nt - 1)
	if lim <= 0 {
		return false // a single thread has no cross-thread pairs
	}
	if s == 0 {
		return y != 0 && abs64(y) <= lim
	}
	s0 := abs64(s)
	r := ((y % s0) + s0) % s0 // sigma ≡ y (mod s0), normalized to [0, s0)
	if r != 0 && r <= lim {
		return true
	}
	if r-s0 >= -lim { // r-s0 is in [-s0, -1]: nonzero unless r == s0 (impossible)
		return true
	}
	if r == 0 && s0 <= lim {
		return true // sigma = ±s0
	}
	return false
}

// solveExist decides existence of an admissible Y with coef*Y in I.
// pointI marks I as the exact point D0 (no free terms, scalar widths),
// where membership is symbolic equality and survivors are proven.
func solveExist(coef poly, I interval, pointI bool, D0 poly, admissible func(int64) bool) solveRes {
	may := solveRes{verdict: vMay}
	neg := false
	if !coef.isNonNeg() {
		if !coef.negate().isNonNeg() {
			return may // mixed-sign coefficient: magnitude unprovable
		}
		neg = true
	}
	pos := coef
	if neg {
		// coef*Y in I  <=>  |coef|*Y in -I; Y's sign flips back below.
		pos = coef.negate()
		I = interval{ok: I.ok, lo: I.hi.negate(), hi: I.lo.negate()}
		D0 = D0.negate()
	}
	beta := int64(-1)
	for b := int64(0); b <= maxBeta; b++ {
		m := pos.mulInt(b + 1)
		if provablyBelow(I.hi, m) && provablyBelow(m.negate(), I.lo) {
			beta = b
			break
		}
	}
	if beta < 0 {
		return may
	}
	var sols []int64
	exact := true
	for y := -beta; y <= beta; y++ {
		yy := y
		if neg {
			yy = -y
		}
		if !admissible(yy) {
			continue
		}
		m := pos.mulInt(y)
		if pointI {
			if m.equal(D0) {
				sols = append(sols, yy)
			}
			continue
		}
		// Keep y unless provably outside I.
		if provablyBelow(m, I.lo) || provablyBelow(I.hi, m) {
			continue
		}
		sols = append(sols, yy)
		// Membership (not just non-exclusion) is decidable when
		// everything folds to numbers.
		mc, ok1 := m.constVal()
		lc, ok2 := I.lo.constVal()
		hc, ok3 := I.hi.constVal()
		if !(ok1 && ok2 && ok3 && lc <= mc && mc <= hc) {
			exact = false
		}
	}
	if len(sols) == 0 {
		return solveRes{verdict: vNone}
	}
	if pointI || exact {
		return solveRes{verdict: vProven, dists: sols}
	}
	return solveRes{verdict: vMay, dists: sols}
}
