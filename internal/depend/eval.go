package depend

import (
	"paravis/internal/minic"
)

// lookup resolves a scalar name to its affine value. Names mutated
// inside any enclosing loop body vary per iteration in ways the domain
// does not track (the recognized induction variables are the exception
// and are excluded from the assigned sets), so they evaluate to bottom.
func (w *walker) lookup(name string) aff {
	// An active loop's recognized induction variable is tracked exactly
	// (it necessarily appears in enclosing loops' assigned sets via its
	// own step); the innermost binding in syms is the current one.
	for i := len(w.loops) - 1; i >= 0; i-- {
		if l := w.loops[i]; l.hasIV && l.ivName == name {
			if a, ok := w.syms[name]; ok {
				return a
			}
			break
		}
	}
	for _, l := range w.loops {
		if l.assigned[name] {
			return affBottom()
		}
	}
	if a, ok := w.syms[name]; ok {
		return a
	}
	if w.env != nil {
		if v, ok := w.env[name]; ok {
			return affConst(v)
		}
	}
	if w.params[name] {
		return affPoly(polySym(name))
	}
	return affBottom()
}

// evalAff evaluates an integer expression to an affine form over the
// enclosing loops' iteration indices.
func (w *walker) evalAff(e minic.Expr) aff {
	switch x := e.(type) {
	case *minic.IntLit:
		return affConst(x.Value)
	case *minic.Ident:
		return w.lookup(x.Name)
	case *minic.Unary:
		if x.Neg {
			return w.evalAff(x.X).negate()
		}
		return affBottom()
	case *minic.Binary:
		switch x.Op {
		case minic.OpAdd:
			return w.evalAff(x.L).add(w.evalAff(x.R))
		case minic.OpSub:
			return w.evalAff(x.L).sub(w.evalAff(x.R))
		case minic.OpMul:
			return w.evalAff(x.L).mul(w.evalAff(x.R))
		case minic.OpDiv, minic.OpRem:
			c, ok := w.evalAff(x.R).constVal()
			if !ok || c <= 0 {
				return affBottom()
			}
			return w.evalAff(x.L).divMod(c, x.Op == minic.OpRem)
		}
		return affBottom()
	case *minic.Call:
		switch x.Name {
		case "omp_get_thread_num":
			return affPoly(polySym(tidSym))
		case "omp_get_num_threads":
			return affConst(int64(w.nt))
		}
		return affBottom()
	}
	return affBottom()
}

// expr walks an expression for its array accesses and scalar binding
// effects.
func (w *walker) expr(e minic.Expr) {
	switch x := e.(type) {
	case *minic.AssignExpr:
		w.assign(x)
	case *minic.IncDec:
		switch t := x.X.(type) {
		case *minic.Ident:
			cur := w.lookup(t.Name)
			if w.predDepth > 0 || !cur.ok {
				w.syms[t.Name] = affBottom()
			} else {
				d := int64(1)
				if !x.Inc {
					d = -1
				}
				w.syms[t.Name] = cur.add(affConst(d))
			}
		case *minic.Index:
			w.walkSubscripts(t)
			w.recordIndex(t, false)
			w.recordIndex(t, true)
		}
	case *minic.Index:
		w.walkSubscripts(x)
		w.recordIndex(x, false)
	case *minic.VecLoad:
		w.expr(x.Idx)
		w.recordVec(x, false)
	case *minic.VecElem:
		w.expr(x.Vec)
		w.expr(x.Idx)
	case *minic.Binary:
		w.expr(x.L)
		w.expr(x.R)
	case *minic.Unary:
		w.expr(x.X)
	case *minic.Cond:
		w.expr(x.C)
		w.expr(x.A)
		w.expr(x.B)
	case *minic.Call:
		for _, a := range x.Args {
			w.expr(a)
		}
	case *minic.Cast:
		w.expr(x.X)
	case *minic.AddrOf:
		w.expr(x.X)
	case *minic.InitList:
		for _, el := range x.Elems {
			w.expr(el)
		}
	}
}

func (w *walker) assign(x *minic.AssignExpr) {
	w.expr(x.RHS)
	switch lhs := x.LHS.(type) {
	case *minic.Ident:
		if w.predDepth > 0 {
			w.syms[lhs.Name] = affBottom()
		} else {
			w.syms[lhs.Name] = w.evalAff(x.RHS)
		}
	case *minic.Index:
		w.walkSubscripts(lhs)
		if x.Op != nil {
			w.recordIndex(lhs, false)
		}
		w.recordIndex(lhs, true)
	case *minic.VecLoad:
		w.expr(lhs.Idx)
		if x.Op != nil {
			w.recordVec(lhs, false)
		}
		w.recordVec(lhs, true)
	case *minic.VecElem:
		w.expr(lhs.Vec)
		w.expr(lhs.Idx)
	}
}

func (w *walker) walkSubscripts(x *minic.Index) {
	for _, idx := range x.Idx {
		w.expr(idx)
	}
	if _, ok := x.Base.(*minic.Ident); !ok {
		w.expr(x.Base)
	}
}

// recordIndex records one array element access. The subscript is
// linearized to a scalar-word index so vector-element arrays and their
// lane accesses live in one address space.
func (w *walker) recordIndex(x *minic.Index, write bool) {
	id, ok := x.Base.(*minic.Ident)
	if !ok {
		return
	}
	arr, ok := w.arrays[id.Name]
	if !ok {
		return
	}
	a := &access{arr: arr, write: write, pos: x.Pos, width: 1, sub: affBottom(), node: x}
	switch {
	case arr.dram && len(x.Idx) == 1:
		a.sub = w.evalAff(x.Idx[0])
	case len(x.Idx) == len(arr.dims):
		a.sub = w.linearize(x.Idx, arr)
		a.width = int64(arr.lanes)
	case len(x.Idx) == len(arr.dims)+1 && arr.lanes > 1:
		// Lane access into a vector-element array.
		elem := w.linearize(x.Idx[:len(x.Idx)-1], arr)
		a.sub = elem.add(w.evalAff(x.Idx[len(x.Idx)-1]))
	}
	w.push(a)
}

func (w *walker) linearize(idx []minic.Expr, arr *arrayInfo) aff {
	acc := w.evalAff(idx[0])
	for i := 1; i < len(idx); i++ {
		acc = acc.mul(affConst(int64(arr.dims[i]))).add(w.evalAff(idx[i]))
	}
	return acc.mul(affConst(int64(arr.lanes)))
}

func (w *walker) recordVec(x *minic.VecLoad, write bool) {
	id, ok := x.Base.(*minic.Ident)
	if !ok {
		return
	}
	arr, ok := w.arrays[id.Name]
	if !ok {
		return
	}
	width := int64(1)
	if t := x.Type(); t != nil && t.Lanes > 1 {
		width = int64(t.Lanes)
	}
	w.push(&access{arr: arr, write: write, pos: x.Pos, width: width, sub: w.evalAff(x.Idx), node: x})
}

func (w *walker) push(a *access) {
	a.loops = append([]*loopInfo(nil), w.loops...)
	a.pred = w.predDepth > 0
	a.critical = w.critDepth > 0
	w.accs = append(w.accs, a)
}
