package absint

// FuzzAbsint feeds arbitrary MiniC sources through the interpreter: it
// must never panic, and because every run computes a sound
// over-approximation, runs at different widening aggressiveness must
// agree — proven facts from one may not contradict the other's.

import (
	"testing"

	"paravis/internal/minic"
)

func FuzzAbsint(f *testing.F) {
	seeds := []string{
		tripSrc, strideSrc, laneSrc, oobSrc, refineSrc, deadSrc, divSrc,
		windowSrc, unreachableLoopSrc,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		prog, err := minic.Parse(src, minic.Options{})
		if err != nil {
			return
		}
		for _, fn := range prog.Funcs {
			env := map[string]int64{}
			for _, p := range fn.Params {
				if !p.Type.IsPointer() {
					env[p.Name] = 5
				}
			}
			precise := Analyze(fn, Options{Env: env}) // must not panic
			coarse := Analyze(fn, Options{Env: env, WidenDelay: -1})
			Analyze(fn, Options{}) // symbolic run must not panic either
			if !precise.OK || !coarse.OK {
				continue
			}
			checkAgreement(t, precise, coarse)
		}
	})
}

// checkAgreement asserts that two sound runs never prove contradictory
// facts: widening earlier may only lose precision, not flip verdicts.
func checkAgreement(t *testing.T, a, b *Result) {
	t.Helper()
	for _, fa := range a.Accesses {
		fb := b.Access(fa.Node)
		if fb == nil {
			continue
		}
		if (fa.Verdict == InBounds && fb.Verdict == OOB) ||
			(fa.Verdict == OOB && fb.Verdict == InBounds) {
			t.Fatalf("access %s at %s: precise=%v coarse=%v", fa.Array, fa.Pos, fa.Verdict, fb.Verdict)
		}
		if fa.ElemOK && fb.ElemOK && fa.Elem.Meet(fb.Elem).Empty {
			t.Fatalf("access %s at %s: disjoint elem ranges %+v vs %+v", fa.Array, fa.Pos, fa.Elem, fb.Elem)
		}
	}
	for loop, la := range a.Loops {
		lb := b.Loops[loop]
		if lb == nil {
			continue
		}
		if la.Reachable != lb.Reachable {
			// Reachability is itself a proven fact on the "false" side only:
			// unreachable in one run, reachable in the other is fine when the
			// unreachable claim comes from the more precise run — but a
			// coarser run can never prove MORE, so precise-unreachable with
			// coarse-reachable is the only legal disagreement.
			if la.Reachable && !lb.Reachable {
				t.Fatalf("loop %s: coarse proves unreachable, precise does not", la.Name)
			}
			continue
		}
		if la.Reachable && la.Trips.Meet(lb.Trips).Empty {
			t.Fatalf("loop %s: disjoint trip brackets %+v vs %+v", la.Name, la.Trips, lb.Trips)
		}
	}
	condsB := map[minic.Stmt]*CondFact{}
	for _, cf := range b.Conds {
		condsB[cf.Stmt] = cf
	}
	for _, ca := range a.Conds {
		if cb, ok := condsB[ca.Stmt]; ok {
			if (ca.AlwaysTrue && cb.AlwaysFalse) || (ca.AlwaysFalse && cb.AlwaysTrue) {
				t.Fatalf("cond at %s: contradictory constant verdicts", ca.Pos)
			}
		}
	}
	for _, da := range a.Divs {
		for _, db := range b.Divs {
			if da.Node == db.Node && da.ProvenZero != db.ProvenZero {
				// Proven-zero requires an exact constant; a coarser run may
				// lose the constant, but both claiming different constants is
				// impossible. Losing precision downgrades to MayZero at most.
				if db.ProvenZero && !da.ProvenZero {
					t.Fatalf("div at %s: coarse proves zero, precise does not", da.Pos)
				}
			}
		}
	}
}
