package absint

import (
	"fmt"
	"sort"

	"paravis/internal/minic"
)

// Options configures one Analyze run.
type Options struct {
	// Env maps parameter names to known concrete values (nil = symbolic).
	Env map[string]int64
	// WidenDelay is how many visits a loop head gets before widening
	// kicks in; 0 means the default, negative means widen immediately
	// (used by the fuzzer's monotonicity check).
	WidenDelay int
}

// Verdict classifies one array/vector access.
type Verdict int

// Access verdicts, weakest to strongest claim.
const (
	Unchecked Verdict = iota // no finite extent to check against
	InBounds                 // proven within bounds on every execution
	MayOOB                   // has a finite extent but not provable
	OOB                      // proven out of bounds whenever executed
)

func (v Verdict) String() string {
	switch v {
	case InBounds:
		return "in-bounds"
	case MayOOB:
		return "may-oob"
	case OOB:
		return "oob"
	}
	return "unchecked"
}

// LoopFact summarizes one for statement.
type LoopFact struct {
	Loop *minic.ForStmt
	Name string // "for@line:col", the cross-package loop key
	Pos  minic.Pos
	// Reachable: control can reach the loop head at all.
	Reachable bool
	// BodyReachable: the body can execute at least once.
	BodyReachable bool
	// Trips brackets the per-entry iteration count (body executions per
	// arrival from outside the loop). Always sound; HasHi only when the
	// induction pattern was recognized with invariant bounds.
	Trips Interval
}

// AccessFact is the bounds verdict for one array/vector access site.
type AccessFact struct {
	Node    minic.Expr // *minic.Index, *minic.VecElem or *minic.VecLoad
	Pos     minic.Pos
	Array   string
	Write   bool
	Verdict Verdict
	// BadDim/DimSize/Index describe the decisive subscript for messages:
	// the first dimension proven out (OOB) or not provable (MayOOB).
	BadDim  int
	DimSize int64
	Index   Interval
	// Elem is the flattened scalar-word index of the first element
	// touched, in exactly depend's linearization, with Width words
	// touched from it. ElemOK gates both.
	Elem   Interval
	Width  int64
	ElemOK bool
}

// DivFact is the divisor classification for one integer / or %.
type DivFact struct {
	Node       *minic.Binary
	Pos        minic.Pos
	IsRem      bool
	Divisor    Interval
	ProvenZero bool // divisor is the constant 0
	MayZero    bool // divisor has finite range containing 0
}

// CondFact marks a branch condition proven constant.
type CondFact struct {
	Stmt        minic.Stmt // *minic.IfStmt or *minic.ForStmt
	Pos         minic.Pos
	IsLoop      bool
	AlwaysTrue  bool
	AlwaysFalse bool
}

// Result is the published analysis of one function. When OK is false
// the solver did not converge within budget and no facts are claimed.
type Result struct {
	OK       bool
	NT       int
	Loops    map[*minic.ForStmt]*LoopFact
	Accesses []*AccessFact
	Divs     []*DivFact
	Conds    []*CondFact

	access map[minic.Expr]*AccessFact
}

// Loop returns the fact for st, or nil.
func (r *Result) Loop(st *minic.ForStmt) *LoopFact {
	if r == nil || !r.OK {
		return nil
	}
	return r.Loops[st]
}

// Access returns the fact for an access node, or nil.
func (r *Result) Access(e minic.Expr) *AccessFact {
	if r == nil || !r.OK {
		return nil
	}
	return r.access[e]
}

// IndexRange reports the proven flattened first-element index range of
// an access node, in depend's scalar-word linearization.
func (r *Result) IndexRange(e minic.Expr) (lo, hi int64, ok bool) {
	f := r.Access(e)
	if f == nil || !f.ElemOK || !f.Elem.Bounded() {
		return 0, 0, false
	}
	return f.Elem.Lo, f.Elem.Hi, true
}

// TripHints returns finite per-entry trip brackets keyed by the shared
// loop name, for perfbound's evaluator.
func (r *Result) TripHints() map[string][2]int64 {
	if r == nil || !r.OK {
		return nil
	}
	h := map[string][2]int64{}
	for _, lf := range r.Loops {
		if !lf.Reachable {
			h[lf.Name] = [2]int64{0, 0}
			continue
		}
		if lf.Trips.Bounded() {
			h[lf.Name] = [2]int64{lf.Trips.Lo, lf.Trips.Hi}
		}
	}
	if len(h) == 0 {
		return nil
	}
	return h
}

// Analyze runs the abstract interpreter over one function.
func Analyze(fn *minic.FuncDecl, opts Options) *Result {
	res := &Result{
		Loops:  map[*minic.ForStmt]*LoopFact{},
		access: map[minic.Expr]*AccessFact{},
	}
	if fn == nil || fn.Body == nil {
		return res
	}
	r := resolveFn(fn)
	res.NT = r.nt
	delay := opts.WidenDelay
	switch {
	case delay == 0:
		delay = defaultWidenDelay
	case delay < 0:
		delay = 0
	}
	a := newAnalysis(fn, r, opts.Env, delay)
	if !a.solve() {
		return res
	}
	res.OK = true

	col := &collector{
		a:   a,
		acc: map[minic.Expr]*accRec{},
		div: map[*minic.Binary]Val{},
		win: map[string]*winRec{},
	}
	for _, bl := range a.g.rpo {
		in, reach := a.in[bl]
		if !reach {
			continue
		}
		ev := &evaluator{a: a, st: cloneState(in), inRegion: bl.inRegion, col: col}
		for _, ins := range bl.instrs {
			ev.instr(ins)
		}
		if bl.cond != nil {
			ev.expr(bl.cond)
		}
	}

	col.finishLoops(res)
	col.finishConds(res)
	col.finishAccesses(res)
	col.finishDivs(res)
	return res
}

// --- collector ---

type accRec struct {
	node  minic.Expr
	write bool
	vals  []Val // joined per subscript position (lane last where present)
}

type winRec struct {
	low Val
	len Val
}

type collector struct {
	a   *analysis
	acc map[minic.Expr]*accRec
	div map[*minic.Binary]Val
	win map[string]*winRec
}

func (c *collector) record(node minic.Expr, vals []Val, write bool) {
	rec, ok := c.acc[node]
	if !ok {
		cp := make([]Val, len(vals))
		copy(cp, vals)
		c.acc[node] = &accRec{node: node, vals: cp, write: write}
		return
	}
	rec.write = rec.write || write
	for i := range rec.vals {
		if i < len(vals) {
			rec.vals[i] = rec.vals[i].join(vals[i])
		}
	}
}

func (c *collector) access(x *minic.Index, vals []Val, write bool) {
	c.record(x, vals, write)
}

func (c *collector) vecElem(x *minic.VecElem, val Val) {
	c.record(x, []Val{val}, false)
}

func (c *collector) vecAccess(x *minic.VecLoad, val Val, write bool) {
	c.record(x, []Val{val}, write)
}

func (c *collector) division(x *minic.Binary, d Val) {
	if cur, ok := c.div[x]; ok {
		c.div[x] = cur.join(d)
	} else {
		c.div[x] = d
	}
}

func (c *collector) mapWindow(mc *minic.MapClause, low, length Val) {
	if mc.Low == nil {
		return
	}
	if w, ok := c.win[mc.Name]; ok {
		w.low = w.low.join(low)
		w.len = w.len.join(length)
	} else {
		c.win[mc.Name] = &winRec{low: low, len: length}
	}
}

// --- loops ---

func loopName(st *minic.ForStmt) string { return fmt.Sprintf("for@%s", st.Pos) }

func (c *collector) finishLoops(res *Result) {
	for st, head := range c.a.g.heads {
		lf := &LoopFact{Loop: st, Name: loopName(st), Pos: st.Pos}
		res.Loops[st] = lf
		if _, ok := c.a.in[head]; !ok {
			lf.Trips = Exact(0)
			continue
		}
		lf.Reachable = true
		if st.Cond == nil {
			lf.BodyReachable = true
			lf.Trips = AtLeast(0)
			continue
		}
		_, bodyOK := c.a.outT[head]
		lf.BodyReachable = bodyOK

		trips := AtLeast(0)
		if !bodyOK {
			trips = Exact(0)
		} else {
			if t, ok := c.recognizedTrips(st, head); ok {
				trips = trips.Meet(t)
			}
			// First-iteration check on the per-entry preheader state.
			pre, have := c.a.inFlow(head, head.latch)
			if have && !impure(st.Cond) {
				ev := &evaluator{a: c.a, st: cloneState(pre), inRegion: head.inRegion}
				switch ev.expr(st.Cond).truth() {
				case +1:
					trips = trips.Meet(AtLeast(1))
				case -1:
					trips = trips.Meet(Exact(0))
				}
			}
			if head.latch == nil {
				// Body always returns: no back edge, at most one trip.
				trips = trips.Meet(Range(0, 1))
			}
		}
		if trips.Empty {
			trips = AtLeast(0)
		}
		lf.Trips = trips
	}
}

// recognizedTrips brackets the per-entry trip count of a canonical
// counted loop: a single induction variable stepped by an invariant
// constant in the post clause and tested against an invariant bound.
func (c *collector) recognizedTrips(st *minic.ForStmt, head *block) (Interval, bool) {
	if impure(st.Cond) {
		return Top(), false
	}
	ivName, step, stepStmt, stepExpr := recognizeStepStmt(st)
	if ivName == "" {
		return Top(), false
	}
	// The induction variable must be an analyzable scalar and must not
	// be touched anywhere else in the loop.
	iv := c.lookupAt(st, ivName)
	if iv == nil || !iv.tracked || (iv.sharedMut && head.inRegion) {
		return Top(), false
	}
	mut := mutatedNames(st, stepStmt)
	if mut[ivName] {
		return Top(), false
	}

	pre, have := c.a.inFlow(head, head.latch)
	if !have {
		return Top(), false
	}
	ev := &evaluator{a: c.a, st: cloneState(pre), inRegion: head.inRegion}

	// The step must be an invariant constant.
	if stepExpr != nil {
		if !c.invariant(stepExpr, mut, head.inRegion) {
			return Top(), false
		}
		sc, ok := ev.expr(stepExpr).constVal()
		if !ok || sc == 0 {
			return Top(), false
		}
		if step < 0 {
			sc = -sc
		}
		step = sc
	}
	if step == 0 {
		return Top(), false
	}

	// Match the bound: iv OP bound with OP agreeing with the step sign.
	b, ok := st.Cond.(*minic.Binary)
	if !ok {
		return Top(), false
	}
	op := b.Op
	var boundExpr minic.Expr
	switch {
	case isIdentName(b.L, ivName):
		boundExpr = b.R
	case isIdentName(b.R, ivName):
		boundExpr = b.L
		switch op {
		case minic.OpLt:
			op = minic.OpGt
		case minic.OpLe:
			op = minic.OpGe
		case minic.OpGt:
			op = minic.OpLt
		case minic.OpGe:
			op = minic.OpLe
		}
	default:
		return Top(), false
	}
	if !c.invariant(boundExpr, mut, head.inRegion) {
		return Top(), false
	}
	bound := ev.expr(boundExpr).I
	init := ev.get(iv).I
	if bound.Empty || init.Empty {
		return Top(), false
	}

	// Normalize to an exclusive upper bound for positive steps (iv < B)
	// and an exclusive lower bound for negative steps (iv > B).
	switch {
	case step > 0 && op == minic.OpLt:
	case step > 0 && op == minic.OpLe:
		bound = bound.Add(Exact(1))
	case step < 0 && op == minic.OpGt:
	case step < 0 && op == minic.OpGe:
		bound = bound.Add(Exact(-1))
	default:
		return Top(), false
	}

	// trips = max(0, ceil((B - I) / S)) for S > 0, and the mirrored form
	// for S < 0; interval ends pair the extremes soundly.
	r := Interval{HasLo: true, Lo: 0}
	if step > 0 {
		if bound.HasHi && init.HasLo {
			if d, ok := subOv(bound.Hi, init.Lo); ok {
				r.HasHi, r.Hi = true, max64(0, ceilDiv(d, step))
			}
		}
		if bound.HasLo && init.HasHi {
			if d, ok := subOv(bound.Lo, init.Hi); ok {
				r.Lo = max64(0, ceilDiv(d, step))
			}
		}
	} else {
		s := -step
		if init.HasHi && bound.HasLo {
			if d, ok := subOv(init.Hi, bound.Lo); ok {
				r.HasHi, r.Hi = true, max64(0, ceilDiv(d, s))
			}
		}
		if init.HasLo && bound.HasHi {
			if d, ok := subOv(init.Lo, bound.Hi); ok {
				r.Lo = max64(0, ceilDiv(d, s))
			}
		}
	}
	return r, true
}

// ceilDiv returns ceil(a/b) for b > 0.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b > 0 {
		q++
	}
	return q
}

// recognizeStepStmt finds the post clause stepping the candidate
// induction variable: `iv++`, `iv--`, `iv += e`, `iv -= e`, or
// `iv = iv + e` (and the commuted/subtracted forms). step carries the
// sign for the IncDec forms and the +-1/-1 direction otherwise (the
// caller folds the expression value in).
func recognizeStepStmt(st *minic.ForStmt) (ivName string, step int64, stepStmt minic.Stmt, stepExpr minic.Expr) {
	for _, s := range st.Post {
		es, ok := s.(*minic.ExprStmt)
		if !ok {
			continue
		}
		switch x := es.X.(type) {
		case *minic.IncDec:
			if id, ok := x.X.(*minic.Ident); ok && condMentions(st.Cond, id.Name) {
				if x.Inc {
					return id.Name, 1, s, nil
				}
				return id.Name, -1, s, nil
			}
		case *minic.AssignExpr:
			id, ok := x.LHS.(*minic.Ident)
			if !ok || !condMentions(st.Cond, id.Name) {
				continue
			}
			if x.Op != nil && (*x.Op == minic.OpAdd || *x.Op == minic.OpSub) {
				dir := int64(1)
				if *x.Op == minic.OpSub {
					dir = -1
				}
				return id.Name, dir, s, x.RHS
			}
			if x.Op == nil {
				if b, ok := x.RHS.(*minic.Binary); ok {
					switch {
					case b.Op == minic.OpAdd && isIdentName(b.L, id.Name):
						return id.Name, 1, s, b.R
					case b.Op == minic.OpAdd && isIdentName(b.R, id.Name):
						return id.Name, 1, s, b.L
					case b.Op == minic.OpSub && isIdentName(b.L, id.Name):
						return id.Name, -1, s, b.R
					}
				}
			}
		}
	}
	return "", 0, nil, nil
}

func isIdentName(e minic.Expr, name string) bool {
	id, ok := e.(*minic.Ident)
	return ok && id.Name == name
}

func condMentions(cond minic.Expr, name string) bool {
	b, ok := cond.(*minic.Binary)
	if !ok || !b.Op.IsComparison() {
		return false
	}
	return isIdentName(b.L, name) || isIdentName(b.R, name)
}

// lookupAt resolves name as seen by the loop condition (any Ident of
// that name inside the condition or body shares the resolution).
func (c *collector) lookupAt(st *minic.ForStmt, name string) *variable {
	var found *variable
	var scan func(e minic.Expr)
	scan = func(e minic.Expr) {
		if found != nil || e == nil {
			return
		}
		if id, ok := e.(*minic.Ident); ok {
			if id.Name == name {
				found = c.a.res.useOf[id]
			}
			return
		}
		for _, sub := range children(e) {
			scan(sub)
		}
	}
	scan(st.Cond)
	return found
}

// mutatedNames collects every name assigned (or declared, which shadows)
// inside the loop body, condition and post clauses, except the
// recognized step statement itself.
func mutatedNames(st *minic.ForStmt, skip minic.Stmt) map[string]bool {
	mut := map[string]bool{}
	var walkS func(s minic.Stmt)
	var walkE func(e minic.Expr)
	walkE = func(e minic.Expr) {
		if e == nil {
			return
		}
		switch x := e.(type) {
		case *minic.AssignExpr:
			if id, ok := x.LHS.(*minic.Ident); ok {
				mut[id.Name] = true
			}
		case *minic.IncDec:
			if id, ok := x.X.(*minic.Ident); ok {
				mut[id.Name] = true
			}
		}
		for _, sub := range children(e) {
			walkE(sub)
		}
	}
	walkS = func(s minic.Stmt) {
		if s == skip {
			return
		}
		switch x := s.(type) {
		case *minic.BlockStmt:
			for _, cs := range x.Stmts {
				walkS(cs)
			}
		case *minic.DeclStmt:
			mut[x.Name] = true
			walkE(x.Init)
		case *minic.ExprStmt:
			walkE(x.X)
		case *minic.ForStmt:
			for _, cs := range x.Init {
				walkS(cs)
			}
			walkE(x.Cond)
			walkS(x.Body)
			for _, cs := range x.Post {
				walkS(cs)
			}
		case *minic.IfStmt:
			walkE(x.Cond)
			walkS(x.Then)
			if x.Else != nil {
				walkS(x.Else)
			}
		case *minic.ReturnStmt:
			walkE(x.X)
		case *minic.CriticalStmt:
			walkS(x.Body)
		case *minic.TargetStmt:
			walkS(x.Body)
		}
	}
	walkE(st.Cond)
	walkS(st.Body)
	for _, s := range st.Post {
		walkS(s)
	}
	return mut
}

// invariant reports whether e evaluates to the same value on every
// iteration: all free identifiers unmutated in the loop and (inside a
// region) not shared-mutable, and all calls the omp builtins.
func (c *collector) invariant(e minic.Expr, mut map[string]bool, inRegion bool) bool {
	switch x := e.(type) {
	case nil:
		return true
	case *minic.Ident:
		if mut[x.Name] {
			return false
		}
		v := c.a.res.useOf[x]
		if v != nil && v.sharedMut && inRegion {
			return false
		}
		return true
	case *minic.Call:
		if x.Name != "omp_get_thread_num" && x.Name != "omp_get_num_threads" {
			return false
		}
		return true
	case *minic.AssignExpr, *minic.IncDec:
		return false
	}
	for _, sub := range children(e) {
		if !c.invariant(sub, mut, inRegion) {
			return false
		}
	}
	return true
}

// --- conditions ---

func (c *collector) finishConds(res *Result) {
	for _, bl := range c.a.g.rpo {
		if bl.cond == nil || bl.condStmt == nil {
			continue
		}
		if _, reach := c.a.in[bl]; !reach {
			continue
		}
		_, tOK := c.a.outT[bl]
		_, fOK := c.a.outF[bl]
		if tOK == fOK {
			continue // undecided, or bottom on both edges
		}
		cf := &CondFact{Stmt: bl.condStmt, IsLoop: bl.isLoopHead, AlwaysTrue: !fOK, AlwaysFalse: !tOK}
		switch s := bl.condStmt.(type) {
		case *minic.IfStmt:
			cf.Pos = s.Pos
		case *minic.ForStmt:
			cf.Pos = s.Pos
		}
		res.Conds = append(res.Conds, cf)
	}
	sort.Slice(res.Conds, func(i, j int) bool { return posLess(res.Conds[i].Pos, res.Conds[j].Pos) })
}

func posLess(a, b minic.Pos) bool {
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Col < b.Col
}

// --- accesses ---

func (c *collector) finishAccesses(res *Result) {
	for node, rec := range c.acc {
		f := c.finalizeAccess(node, rec)
		if f == nil {
			continue
		}
		res.Accesses = append(res.Accesses, f)
		res.access[node] = f
	}
	sort.Slice(res.Accesses, func(i, j int) bool {
		a, b := res.Accesses[i], res.Accesses[j]
		if a.Pos != b.Pos {
			return posLess(a.Pos, b.Pos)
		}
		if a.Array != b.Array {
			return a.Array < b.Array
		}
		return !a.Write && b.Write
	})
}

func (c *collector) finalizeAccess(node minic.Expr, rec *accRec) *AccessFact {
	switch x := node.(type) {
	case *minic.Index:
		return c.finalizeIndex(x, rec)
	case *minic.VecElem:
		f := &AccessFact{Node: x, Pos: x.Pos, Write: rec.write, Width: 1}
		if id, ok := x.Vec.(*minic.Ident); ok {
			f.Array = id.Name
		}
		lanes := 0
		if t := x.Vec.Type(); t != nil && t.Lanes > 1 {
			lanes = t.Lanes
		}
		if lanes == 0 {
			f.Verdict = Unchecked
			return f
		}
		f.Verdict, f.Index = judge(rec.vals[0], 0, int64(lanes)-1)
		f.BadDim, f.DimSize = 0, int64(lanes)
		return f
	case *minic.VecLoad:
		f := &AccessFact{Node: x, Pos: x.Pos, Write: rec.write, Width: 1}
		if t := x.Type(); t != nil && t.Lanes > 1 {
			f.Width = int64(t.Lanes)
		}
		id, ok := x.Base.(*minic.Ident)
		if !ok {
			f.Verdict = Unchecked
			return f
		}
		f.Array = id.Name
		v := c.a.res.useOf[id]
		if v == nil {
			f.Verdict = Unchecked
			return f
		}
		f.Elem, f.ElemOK = rec.vals[0].I, true
		if len(v.dims) > 0 {
			total := int64(max(1, v.lanes))
			for _, d := range v.dims {
				total *= int64(d)
			}
			f.Verdict, f.Index = judge(rec.vals[0], 0, total-f.Width)
			f.BadDim, f.DimSize = -1, total
			return f
		}
		if lo, hi, ok := c.window(id.Name); ok {
			f.Verdict, f.Index = judge(rec.vals[0], lo, hi-f.Width+1)
			f.BadDim, f.DimSize = -1, hi-lo+1
			return f
		}
		f.Verdict = Unchecked
		return f
	}
	return nil
}

func (c *collector) finalizeIndex(x *minic.Index, rec *accRec) *AccessFact {
	f := &AccessFact{Node: x, Pos: x.Pos, Write: rec.write, Width: 1, BadDim: -1}
	id, ok := x.Base.(*minic.Ident)
	if !ok {
		f.Verdict = Unchecked
		return f
	}
	f.Array = id.Name
	v := c.a.res.useOf[id]
	if v == nil {
		f.Verdict = Unchecked
		return f
	}
	dram := v.typ != nil && v.typ.IsPointer()
	switch {
	case dram && len(x.Idx) == 1:
		f.Elem, f.ElemOK = rec.vals[0].I, true
		if lo, hi, ok := c.window(id.Name); ok {
			f.Verdict, f.Index = judge(rec.vals[0], lo, hi)
			f.BadDim, f.DimSize = 0, hi-lo+1
		} else {
			f.Verdict = Unchecked
		}
		return f
	case len(v.dims) > 0 && len(x.Idx) == len(v.dims):
		lanes := int64(max(1, v.lanes))
		f.Width = lanes
		f.Elem, f.ElemOK = linearizeVals(rec.vals, v.dims, lanes).I, true
		f.Verdict = InBounds
		for i, d := range v.dims {
			verdict, idx := judge(rec.vals[i], 0, int64(d)-1)
			if worse(verdict, f.Verdict) {
				f.Verdict, f.BadDim, f.DimSize, f.Index = verdict, i, int64(d), idx
				if verdict == OOB {
					break
				}
			}
		}
		return f
	case len(v.dims) > 0 && len(x.Idx) == len(v.dims)+1 && v.lanes > 1:
		// Lane access into a vector-element array.
		lanes := int64(v.lanes)
		elem := linearizeVals(rec.vals[:len(rec.vals)-1], v.dims, lanes)
		f.Elem, f.ElemOK = elem.add(rec.vals[len(rec.vals)-1]).I, true
		f.Verdict = InBounds
		for i, d := range v.dims {
			verdict, idx := judge(rec.vals[i], 0, int64(d)-1)
			if worse(verdict, f.Verdict) {
				f.Verdict, f.BadDim, f.DimSize, f.Index = verdict, i, int64(d), idx
			}
		}
		if f.Verdict != OOB {
			verdict, idx := judge(rec.vals[len(rec.vals)-1], 0, lanes-1)
			if worse(verdict, f.Verdict) {
				f.Verdict, f.BadDim, f.DimSize, f.Index = verdict, len(v.dims), lanes, idx
			}
		}
		return f
	default:
		f.Verdict = Unchecked
		return f
	}
}

// judge classifies one subscript value against the inclusive safe range
// [lo, hi]: inside on every execution, provably outside, or undecided.
func judge(v Val, lo, hi int64) (Verdict, Interval) {
	if lo > hi {
		return OOB, v.I
	}
	if v.I.HasLo && v.I.Lo >= lo && v.I.HasHi && v.I.Hi <= hi {
		return InBounds, v.I
	}
	if v.meet(intervalVal(Range(lo, hi))).isBottom() {
		return OOB, v.I
	}
	return MayOOB, v.I
}

func worse(a, b Verdict) bool {
	rank := func(v Verdict) int {
		switch v {
		case OOB:
			return 2
		case MayOOB:
			return 1
		}
		return 0
	}
	return rank(a) > rank(b)
}

// linearizeVals mirrors depend's scalar-word flattening:
// ((i0*d1 + i1)...)*lanes.
func linearizeVals(vals []Val, dims []int, lanes int64) Val {
	acc := vals[0]
	for i := 1; i < len(vals); i++ {
		acc = acc.mul(exactVal(int64(dims[i]))).add(vals[i])
	}
	return acc.mul(exactVal(lanes))
}

// window returns the mapped DRAM window [lo, hi] for a pointer
// parameter when the map clause extent was a compile-time constant.
func (c *collector) window(name string) (lo, hi int64, ok bool) {
	w, found := c.win[name]
	if !found {
		return 0, 0, false
	}
	l, okL := w.low.constVal()
	n, okN := w.len.constVal()
	if !okL || !okN || n <= 0 {
		return 0, 0, false
	}
	h, okA := addOv(l, n-1)
	if !okA {
		return 0, 0, false
	}
	return l, h, true
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// --- divisions ---

func (c *collector) finishDivs(res *Result) {
	for node, d := range c.div {
		f := &DivFact{Node: node, Pos: node.Pos, IsRem: node.Op == minic.OpRem, Divisor: d.I}
		if cv, ok := d.constVal(); ok && cv == 0 {
			f.ProvenZero = true
		} else if d.I.Bounded() && d.I.Contains(0) && d.C.member(0) {
			f.MayZero = true
		}
		res.Divs = append(res.Divs, f)
	}
	sort.Slice(res.Divs, func(i, j int) bool { return posLess(res.Divs[i].Pos, res.Divs[j].Pos) })
}
