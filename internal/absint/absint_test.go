package absint

import (
	"strings"
	"testing"

	"paravis/internal/minic"
)

func analyzeSrc(t *testing.T, src string, env map[string]int64) *Result {
	t.Helper()
	prog, err := minic.Parse(src, minic.Options{})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(prog.Funcs) == 0 {
		t.Fatalf("no functions")
	}
	res := Analyze(prog.Funcs[0], Options{Env: env})
	if !res.OK {
		t.Fatalf("solver did not converge")
	}
	return res
}

func loopAt(t *testing.T, res *Result, src, marker string) *LoopFact {
	t.Helper()
	line := 0
	for i, l := range strings.Split(src, "\n") {
		if strings.Contains(l, marker) {
			line = i + 1
			break
		}
	}
	if line == 0 {
		t.Fatalf("marker %q not in source", marker)
	}
	for _, lf := range res.Loops {
		if lf.Pos.Line == line {
			return lf
		}
	}
	t.Fatalf("no loop fact on line %d (marker %q)", line, marker)
	return nil
}

func accessAt(t *testing.T, res *Result, src, marker, arr string) *AccessFact {
	t.Helper()
	line := 0
	for i, l := range strings.Split(src, "\n") {
		if strings.Contains(l, marker) {
			line = i + 1
			break
		}
	}
	if line == 0 {
		t.Fatalf("marker %q not in source", marker)
	}
	for _, f := range res.Accesses {
		if f.Pos.Line == line && f.Array == arr {
			return f
		}
	}
	t.Fatalf("no access fact for %s on line %d (marker %q); have %v", arr, line, marker, res.Accesses)
	return nil
}

// --- domain unit tests ---

func TestIntervalOps(t *testing.T) {
	a := Range(2, 5)
	b := Range(-1, 3)
	if j := a.Join(b); j.Lo != -1 || j.Hi != 5 {
		t.Errorf("join = %+v", j)
	}
	if m := a.Meet(b); m.Lo != 2 || m.Hi != 3 {
		t.Errorf("meet = %+v", m)
	}
	if s := a.Add(b); s.Lo != 1 || s.Hi != 8 {
		t.Errorf("add = %+v", s)
	}
	if p := a.Mul(Exact(-2)); p.Lo != -10 || p.Hi != -4 {
		t.Errorf("mul = %+v", p)
	}
	if q := Range(0, 59).Div(Exact(4)); q.Lo != 0 || q.Hi != 14 {
		t.Errorf("div = %+v", q)
	}
	if r := Range(0, 59).Rem(Exact(4)); r.Lo != 0 || r.Hi != 3 {
		t.Errorf("rem = %+v", r)
	}
	if r := Range(-7, -1).Rem(Exact(4)); r.Lo != -3 || r.Hi != 0 {
		t.Errorf("neg rem = %+v", r)
	}
	if !Range(3, 2).Empty {
		t.Errorf("inverted range should be bottom")
	}
}

func TestCongruence(t *testing.T) {
	// x ≡ 0 (mod 4) joined with x ≡ 2 (mod 4) gives mod 2.
	j := congMod(4, 0).join(congMod(4, 2))
	if j.Mod != 2 || j.Rem != 0 {
		t.Errorf("join = %+v", j)
	}
	// 4k + 1 stays odd through the product domain.
	v := exactVal(4).mul(topVal()).add(exactVal(1))
	if v.C.Mod != 4 || v.C.Rem != 1 {
		t.Errorf("4k+1 congruence = %+v", v.C)
	}
	// Reduction tightens interval ends to congruence members.
	r := reduce(Val{I: Range(1, 10), C: congMod(4, 0)})
	if r.I.Lo != 4 || r.I.Hi != 8 {
		t.Errorf("reduced = %+v", r.I)
	}
	// Disjoint congruence and interval is bottom.
	if !reduce(Val{I: Range(1, 3), C: congMod(8, 5)}).isBottom() {
		t.Errorf("expected bottom")
	}
}

func TestWidenThenNarrow(t *testing.T) {
	th := []int64{0, 10}
	w := Range(0, 1).widen(Range(0, 2), th)
	if !w.HasHi || w.Hi != 10 {
		t.Errorf("widen to threshold = %+v", w)
	}
	w = Range(0, 10).widen(Range(0, 11), th)
	if w.HasHi {
		t.Errorf("widen past last threshold should drop bound: %+v", w)
	}
}

// --- whole-program facts ---

const tripSrc = `
void f(int n) {
  int s = 0;
  for (int i = 0; i < 16; i++) {
    s = s + i;
  }
  for (int j = 10; j > 0; j -= 2) {
    s = s + j;
  }
  for (int k = 0; k < n; k++) {
    s = s + k;
  }
}
`

func TestTripCounts(t *testing.T) {
	res := analyzeSrc(t, tripSrc, nil)
	lf := loopAt(t, res, tripSrc, "i = 0")
	if !lf.Trips.Bounded() || lf.Trips.Lo != 16 || lf.Trips.Hi != 16 {
		t.Errorf("constant loop trips = %+v", lf.Trips)
	}
	lf = loopAt(t, res, tripSrc, "j = 10")
	if !lf.Trips.Bounded() || lf.Trips.Lo != 5 || lf.Trips.Hi != 5 {
		t.Errorf("down-counting trips = %+v", lf.Trips)
	}
	lf = loopAt(t, res, tripSrc, "k = 0")
	if lf.Trips.HasHi {
		t.Errorf("symbolic bound should have no upper trip bound: %+v", lf.Trips)
	}
	if !lf.Trips.HasLo || lf.Trips.Lo != 0 {
		t.Errorf("symbolic bound lower = %+v", lf.Trips)
	}
}

func TestTripCountsWithEnv(t *testing.T) {
	res := analyzeSrc(t, tripSrc, map[string]int64{"n": 7})
	lf := loopAt(t, res, tripSrc, "k = 0")
	if !lf.Trips.Bounded() || lf.Trips.Lo != 7 || lf.Trips.Hi != 7 {
		t.Errorf("env-bound trips = %+v", lf.Trips)
	}
	hints := res.TripHints()
	if len(hints) != 3 {
		t.Errorf("hints = %v", hints)
	}
}

const strideSrc = `
void f(float* out) {
  #pragma omp target parallel num_threads(4) map(from: out[0:16])
  {
    int tid = omp_get_thread_num();
    int nth = omp_get_num_threads();
    float acc[16];
    for (int i = tid; i < 16; i += nth) {
      acc[i] = 1.0;
    }
  }
}
`

func TestDistributedLoop(t *testing.T) {
	res := analyzeSrc(t, strideSrc, nil)
	lf := loopAt(t, res, strideSrc, "i = tid")
	// init in [0,3], step 4, bound 16: per-thread trips exactly 4.
	if !lf.Trips.Bounded() || lf.Trips.Lo != 4 || lf.Trips.Hi != 4 {
		t.Errorf("distributed trips = %+v", lf.Trips)
	}
	f := accessAt(t, res, strideSrc, "acc[i]", "acc")
	if f.Verdict != InBounds {
		t.Errorf("acc[i] verdict = %v (index %+v)", f.Verdict, f.Index)
	}
}

const laneSrc = `
void f(int n) {
  VECTOR a[15];
  for (int v = 0; v < 60; v++) {
    a[v / 4][v % 4] = 0.0;
  }
}
`

func TestLaneCongruencePrecision(t *testing.T) {
	res := analyzeSrc(t, laneSrc, nil)
	f := accessAt(t, res, laneSrc, "a[v / 4]", "a")
	if f.Verdict != InBounds {
		t.Errorf("lane access verdict = %v (dim %d size %d index %+v)",
			f.Verdict, f.BadDim, f.DimSize, f.Index)
	}
	// The element access covers words [Elem, Elem+Width-1]: (v/4)*4 with
	// the mod-4 congruence gives [0,56], width 4 — exactly depend's view.
	if !f.ElemOK || !f.Elem.Bounded() || f.Elem.Lo != 0 || f.Elem.Hi != 56 || f.Width != 4 {
		t.Errorf("flattened elem = %+v width %d", f.Elem, f.Width)
	}
	// The lane subscript itself is checked on the VecElem node.
	var lane *AccessFact
	for _, af := range res.Accesses {
		if _, ok := af.Node.(*minic.VecElem); ok {
			lane = af
		}
	}
	if lane == nil || lane.Verdict != InBounds {
		t.Errorf("lane verdict = %+v", lane)
	}
}

const oobSrc = `
void f(int n) {
  float a[8];
  for (int i = 0; i <= 8; i++) {
    a[i] = 0.0;
  }
  a[8] = 1.0;
  if (n > 5) {
    a[n] = 2.0;
  }
}
`

func TestOOBVerdicts(t *testing.T) {
	res := analyzeSrc(t, oobSrc, nil)
	f := accessAt(t, res, oobSrc, "a[i]", "a")
	if f.Verdict != MayOOB {
		t.Errorf("a[i] verdict = %v", f.Verdict)
	}
	f = accessAt(t, res, oobSrc, "a[8] = 1.0", "a")
	if f.Verdict != OOB {
		t.Errorf("a[8] verdict = %v", f.Verdict)
	}
	f = accessAt(t, res, oobSrc, "a[n]", "a")
	if f.Verdict != MayOOB {
		t.Errorf("a[n] under n>5 verdict = %v (index %+v)", f.Verdict, f.Index)
	}
}

const refineSrc = `
void f(int n) {
  float a[8];
  if (n >= 0) {
    if (n < 8) {
      a[n] = 1.0;
    }
  }
  if (n == 3) {
    a[n] = 2.0;
  }
}
`

func TestBranchRefinement(t *testing.T) {
	res := analyzeSrc(t, refineSrc, nil)
	f := accessAt(t, res, refineSrc, "a[n] = 1.0", "a")
	if f.Verdict != InBounds {
		t.Errorf("guarded a[n] verdict = %v (index %+v)", f.Verdict, f.Index)
	}
	f = accessAt(t, res, refineSrc, "a[n] = 2.0", "a")
	if f.Verdict != InBounds {
		t.Errorf("n==3 a[n] verdict = %v (index %+v)", f.Verdict, f.Index)
	}
}

const deadSrc = `
void f(int n) {
  int c = 4;
  if (c < 2) {
    n = 1;
  }
  for (int i = 0; i < c; i++) {
    if (i >= 0) {
      n = n + i;
    }
  }
  for (int j = 5; j < 3; j++) {
    n = n + j;
  }
}
`

func TestDeadBranches(t *testing.T) {
	res := analyzeSrc(t, deadSrc, nil)
	var falseIf, trueIf, deadLoop bool
	for _, cf := range res.Conds {
		switch {
		case !cf.IsLoop && cf.AlwaysFalse:
			falseIf = true
		case !cf.IsLoop && cf.AlwaysTrue:
			trueIf = true
		case cf.IsLoop && cf.AlwaysFalse:
			deadLoop = true
		}
	}
	if !falseIf {
		t.Errorf("c<2 not proven always false: %+v", res.Conds)
	}
	if !trueIf {
		t.Errorf("i>=0 not proven always true: %+v", res.Conds)
	}
	if !deadLoop {
		t.Errorf("j loop not proven body-dead: %+v", res.Conds)
	}
	lf := loopAt(t, res, deadSrc, "j = 5")
	if lf.BodyReachable {
		t.Errorf("dead loop body marked reachable")
	}
	if c, ok := lf.Trips.Const(); !ok || c != 0 {
		t.Errorf("dead loop trips = %+v", lf.Trips)
	}
}

const divSrc = `
void f(int n) {
  int z = 0;
  int a = 10 / z;
  int tid = 0;
  #pragma omp target parallel num_threads(4) map(to: n)
  {
    int t = omp_get_thread_num();
    int b = 100 / t;
    int c = 100 / n;
  }
}
`

func TestDivFacts(t *testing.T) {
	res := analyzeSrc(t, divSrc, nil)
	var proven, may, silent int
	for _, d := range res.Divs {
		switch {
		case d.ProvenZero:
			proven++
		case d.MayZero:
			may++
		default:
			silent++
		}
	}
	if proven != 1 || may != 1 || silent != 1 {
		t.Errorf("div facts proven=%d may=%d silent=%d (%+v)", proven, may, silent, res.Divs)
	}
}

const windowSrc = `
void f(float* p) {
  #pragma omp target parallel num_threads(1) map(tofrom: p[0:8])
  {
    for (int i = 0; i < 8; i++) {
      p[i] = p[i] + 1.0;
    }
    p[9] = 0.0;
  }
}
`

func TestMappedWindow(t *testing.T) {
	res := analyzeSrc(t, windowSrc, nil)
	f := accessAt(t, res, windowSrc, "p[i] = p[i]", "p")
	if f.Verdict != InBounds {
		t.Errorf("p[i] verdict = %v (index %+v)", f.Verdict, f.Index)
	}
	f = accessAt(t, res, windowSrc, "p[9]", "p")
	if f.Verdict != OOB {
		t.Errorf("p[9] verdict = %v", f.Verdict)
	}
}

const unreachableLoopSrc = `
void f(int n) {
  int on = 0;
  if (on) {
    for (int i = 0; i < 4; i++) {
      n = n + i;
    }
  }
}
`

func TestUnreachableLoop(t *testing.T) {
	res := analyzeSrc(t, unreachableLoopSrc, nil)
	lf := loopAt(t, res, unreachableLoopSrc, "i = 0")
	if lf.Reachable {
		t.Errorf("loop inside if(0) marked reachable")
	}
	if c, ok := lf.Trips.Const(); !ok || c != 0 {
		t.Errorf("unreachable loop trips = %+v", lf.Trips)
	}
}
