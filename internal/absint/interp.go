package absint

import (
	"sort"

	"paravis/internal/minic"
)

// state maps tracked variable ids to non-top abstract values. A missing
// key means top; unreachable blocks have no state at all.
type state map[int]Val

func cloneState(s state) state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// joinStates over-approximates both inputs: keys kept only where known
// on both sides.
func joinStates(a, b state) state {
	r := make(state)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			j := va.join(vb)
			if !j.isTop() {
				r[k] = j
			}
		}
	}
	return r
}

func equalStates(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || !va.equal(vb) {
			return false
		}
	}
	return true
}

// analysis is the per-function solver context.
type analysis struct {
	res   *resolution
	g     *cfg
	env   map[string]int64
	th    []int64 // sorted widening thresholds
	delay int     // widening delay (head visits before widening kicks in)
	in    map[*block]state
	outN  map[*block]state // unconditional-edge out
	outT  map[*block]state // refined true-edge out
	outF  map[*block]state // refined false-edge out
	ok    bool             // solver converged within budget
}

const (
	defaultWidenDelay = 2
	maxPasses         = 400
)

func newAnalysis(fn *minic.FuncDecl, res *resolution, env map[string]int64, delay int) *analysis {
	a := &analysis{
		res:   res,
		g:     buildCFG(fn),
		env:   env,
		delay: delay,
		in:    map[*block]state{},
		outN:  map[*block]state{},
		outT:  map[*block]state{},
		outF:  map[*block]state{},
	}
	a.th = thresholds(fn, env, res.nt)
	return a
}

// thresholds collects the landmark constants widening snaps to: every
// integer literal in the function (and its off-by-one neighbors, so
// exclusive/inclusive bounds both land), array dimensions, parameter
// values, the thread count, and the usual suspects around zero.
func thresholds(fn *minic.FuncDecl, env map[string]int64, nt int) []int64 {
	set := map[int64]bool{-1: true, 0: true, 1: true, int64(nt): true, int64(nt) - 1: true}
	addC := func(v int64) {
		set[v] = true
		if v > -1<<62 {
			set[v-1] = true
		}
		if v < 1<<62 {
			set[v+1] = true
		}
	}
	for _, v := range env {
		addC(v)
	}
	var walkS func(s minic.Stmt)
	var walkE func(e minic.Expr)
	walkE = func(e minic.Expr) {
		if e == nil {
			return
		}
		if lit, ok := e.(*minic.IntLit); ok {
			addC(lit.Value)
		}
		for _, sub := range children(e) {
			walkE(sub)
		}
	}
	walkS = func(s minic.Stmt) {
		switch st := s.(type) {
		case *minic.BlockStmt:
			for _, c := range st.Stmts {
				walkS(c)
			}
		case *minic.DeclStmt:
			for _, d := range st.Typ.Dims {
				addC(int64(d))
			}
			walkE(st.Init)
		case *minic.ExprStmt:
			walkE(st.X)
		case *minic.ForStmt:
			for _, c := range st.Init {
				walkS(c)
			}
			walkE(st.Cond)
			walkS(st.Body)
			for _, c := range st.Post {
				walkS(c)
			}
		case *minic.IfStmt:
			walkE(st.Cond)
			walkS(st.Then)
			if st.Else != nil {
				walkS(st.Else)
			}
		case *minic.ReturnStmt:
			walkE(st.X)
		case *minic.CriticalStmt:
			walkS(st.Body)
		case *minic.TargetStmt:
			for i := range st.Maps {
				walkE(st.Maps[i].Low)
				walkE(st.Maps[i].Len)
			}
			walkS(st.Body)
		}
	}
	walkS(fn.Body)
	out := make([]int64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// entryState seeds the function entry with known parameter values.
func (a *analysis) entryState() state {
	st := make(state)
	if a.env == nil {
		return st
	}
	for _, v := range a.res.vars {
		if v.isParam && v.tracked {
			if val, ok := a.env[v.name]; ok {
				st[v.id] = exactVal(val)
			}
		}
	}
	return st
}

// inFlow joins the edge-out states of bl's predecessors, skipping any
// listed in except. The second result is false when no predecessor has
// produced a state yet (the block is currently unreachable).
func (a *analysis) inFlow(bl *block, except *block) (state, bool) {
	if bl == a.g.entry {
		return a.entryState(), true
	}
	var acc state
	have := false
	for _, p := range bl.preds {
		if p == except {
			continue
		}
		var edges []state
		if p.cond != nil {
			if p.tsucc == bl {
				if s, ok := a.outT[p]; ok {
					edges = append(edges, s)
				}
			}
			if p.fsucc == bl {
				if s, ok := a.outF[p]; ok {
					edges = append(edges, s)
				}
			}
		} else if p.next == bl {
			if s, ok := a.outN[p]; ok {
				edges = append(edges, s)
			}
		}
		for _, s := range edges {
			if !have {
				acc, have = cloneState(s), true
			} else {
				acc = joinStates(acc, s)
			}
		}
	}
	return acc, have
}

// transfer runs bl's instructions over a copy of in and refreshes the
// per-edge out states.
func (a *analysis) transfer(bl *block, in state) {
	ev := &evaluator{a: a, st: cloneState(in), inRegion: bl.inRegion}
	for _, ins := range bl.instrs {
		ev.instr(ins)
	}
	out := ev.st
	if bl.cond == nil {
		a.outN[bl] = out
		return
	}
	if t, ok := refine(a, out, bl.cond, true, bl.inRegion); ok {
		a.outT[bl] = t
	} else {
		delete(a.outT, bl)
	}
	if f, ok := refine(a, out, bl.cond, false, bl.inRegion); ok {
		a.outF[bl] = f
	} else {
		delete(a.outF, bl)
	}
}

// solve iterates to a fixpoint with widening at loop heads, then runs
// two narrowing passes. Returns false if the pass budget ran out (the
// caller then publishes no facts).
func (a *analysis) solve() bool {
	visits := map[*block]int{}
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, bl := range a.g.rpo {
			newIn, reach := a.inFlow(bl, nil)
			if !reach {
				continue
			}
			old, had := a.in[bl]
			if had {
				merged := joinStates(old, newIn)
				if bl.isLoopHead {
					visits[bl]++
					if visits[bl] > a.delay {
						merged = widenStates(old, merged, a.th)
					}
				}
				if equalStates(old, merged) {
					continue
				}
				newIn = merged
			}
			a.in[bl] = newIn
			a.transfer(bl, newIn)
			changed = true
		}
		if !changed {
			// Narrowing: recompute every state once from scratch without
			// joining with the old value. Transfer functions are monotone
			// and the widened solution is a post-fixpoint, so this only
			// tightens. Two passes recover most threshold overshoot.
			for n := 0; n < 2; n++ {
				for _, bl := range a.g.rpo {
					newIn, reach := a.inFlow(bl, nil)
					if !reach {
						delete(a.in, bl)
						delete(a.outN, bl)
						delete(a.outT, bl)
						delete(a.outF, bl)
						continue
					}
					a.in[bl] = newIn
					a.transfer(bl, newIn)
				}
			}
			return true
		}
	}
	return false
}

// widenStates widens old toward next per variable. Keys that vanish
// from next (went to top) stay gone.
func widenStates(old, next state, th []int64) state {
	r := make(state, len(next))
	for k, nv := range next {
		if ov, ok := old[k]; ok {
			w := ov.widen(nv, th)
			if !w.isTop() {
				r[k] = w
			}
		}
		// Key absent in old: first time this variable is known here —
		// keep the new value; the join already covered both inputs.
		if _, ok := old[k]; !ok {
			if !nv.isTop() {
				r[k] = nv
			}
		}
	}
	return r
}

// evaluator walks statements/expressions over one mutable state. The
// optional collector records facts (used after the fixpoint); during
// solving it is nil.
type evaluator struct {
	a        *analysis
	st       state
	inRegion bool
	col      *collector
}

func (ev *evaluator) instr(ins instr) {
	switch ins.kind {
	case ikStmt:
		switch st := ins.s.(type) {
		case *minic.DeclStmt:
			var v Val
			if st.Init != nil {
				v = ev.expr(st.Init)
			} else {
				v = topVal()
			}
			if vr := ev.a.res.declOf[st]; vr != nil && vr.tracked {
				ev.set(vr, v)
			}
		case *minic.ExprStmt:
			ev.expr(st.X)
		case *minic.ReturnStmt:
			if st.X != nil {
				ev.expr(st.X)
			}
		}
	case ikTargetEnter:
		for i := range ins.ts.Maps {
			mc := &ins.ts.Maps[i]
			low, length := topVal(), topVal()
			if mc.Low != nil {
				low = ev.expr(mc.Low)
			}
			if mc.Len != nil {
				length = ev.expr(mc.Len)
			}
			if ev.col != nil {
				ev.col.mapWindow(mc, low, length)
			}
		}
	case ikTargetExit:
		// The region ran on NT threads: anything it may have written to
		// outer scope is unknown afterwards, as are from-mapped scalars.
		for _, v := range ev.a.res.vars {
			if v.sharedMut {
				delete(ev.st, v.id)
			}
		}
		for i := range ins.ts.Maps {
			mc := &ins.ts.Maps[i]
			if mc.Dir == minic.MapTo {
				continue
			}
			if v, ok := ev.a.res.mapOf[mc.Name]; ok && v.tracked {
				delete(ev.st, v.id)
			}
		}
	}
}

func (ev *evaluator) set(v *variable, val Val) {
	if val.isTop() {
		delete(ev.st, v.id)
	} else {
		ev.st[v.id] = val
	}
}

func (ev *evaluator) get(v *variable) Val {
	if v == nil || !v.tracked {
		return topVal()
	}
	if v.sharedMut && ev.inRegion {
		// Another omp thread may have stored anything here.
		return topVal()
	}
	if val, ok := ev.st[v.id]; ok {
		return val
	}
	return topVal()
}

func isIntExpr(e minic.Expr) bool {
	t := e.Type()
	return t != nil && t.IsScalar() && t.Basic == minic.Int
}

// expr abstractly evaluates e, applying assignment/increment side
// effects to the state and recording facts through the collector.
func (ev *evaluator) expr(e minic.Expr) Val {
	switch x := e.(type) {
	case nil:
		return topVal()
	case *minic.IntLit:
		return exactVal(x.Value)
	case *minic.FloatLit:
		return topVal()
	case *minic.Ident:
		return ev.get(ev.a.res.useOf[x])
	case *minic.Call:
		for _, arg := range x.Args {
			ev.expr(arg)
		}
		switch x.Name {
		case "omp_get_thread_num":
			return intervalVal(Range(0, int64(ev.a.res.nt)-1))
		case "omp_get_num_threads":
			return exactVal(int64(ev.a.res.nt))
		}
		return topVal()
	case *minic.Unary:
		v := ev.expr(x.X)
		if x.Neg {
			if !isIntExpr(x) {
				return topVal()
			}
			return v.neg()
		}
		return boolVal(-v.truth())
	case *minic.Binary:
		return ev.binary(x)
	case *minic.Cond:
		c := ev.expr(x.C)
		av := ev.expr(x.A)
		bv := ev.expr(x.B)
		if !isIntExpr(x) {
			return topVal()
		}
		switch c.truth() {
		case +1:
			return av
		case -1:
			return bv
		}
		return av.join(bv)
	case *minic.Index:
		ev.index(x, false)
		return topVal()
	case *minic.VecElem:
		iv := ev.expr(x.Idx)
		if _, ok := x.Vec.(*minic.Ident); !ok {
			ev.expr(x.Vec)
		}
		if ev.col != nil {
			ev.col.vecElem(x, iv)
		}
		return topVal()
	case *minic.VecLoad:
		iv := ev.expr(x.Idx)
		if _, ok := x.Base.(*minic.Ident); !ok {
			ev.expr(x.Base)
		}
		if ev.col != nil {
			ev.col.vecAccess(x, iv, false)
		}
		return topVal()
	case *minic.AssignExpr:
		return ev.assign(x)
	case *minic.IncDec:
		if ix, ok := x.X.(*minic.Index); ok {
			ev.index(ix, true)
			return topVal()
		}
		if id, ok := x.X.(*minic.Ident); ok {
			v := ev.a.res.useOf[id]
			cur := ev.get(v)
			d := exactVal(1)
			if !x.Inc {
				d = exactVal(-1)
			}
			nv := cur.add(d)
			if v != nil && v.tracked {
				ev.set(v, nv)
			}
			return nv
		}
		ev.expr(x.X)
		return topVal()
	case *minic.Cast:
		ev.expr(x.X)
		return topVal()
	case *minic.AddrOf:
		ev.expr(x.X)
		return topVal()
	case *minic.InitList:
		for _, el := range x.Elems {
			ev.expr(el)
		}
		return topVal()
	}
	return topVal()
}

// index evaluates an Index node's subscripts and records the access.
func (ev *evaluator) index(x *minic.Index, write bool) {
	vals := make([]Val, len(x.Idx))
	for i, ix := range x.Idx {
		vals[i] = ev.expr(ix)
	}
	if _, ok := x.Base.(*minic.Ident); !ok {
		ev.expr(x.Base)
	}
	if ev.col != nil {
		ev.col.access(x, vals, write)
	}
}

func (ev *evaluator) binary(x *minic.Binary) Val {
	l := ev.expr(x.L)
	// Short-circuit operators still evaluate both sides abstractly (the
	// right side has no tracked side effects in condition position).
	r := ev.expr(x.R)
	intOp := isIntExpr(x.L) && isIntExpr(x.R)
	switch x.Op {
	case minic.OpAdd, minic.OpSub, minic.OpMul, minic.OpDiv, minic.OpRem:
		if !intOp {
			if (x.Op == minic.OpDiv || x.Op == minic.OpRem) && ev.col != nil && isIntExpr(x.R) {
				ev.col.division(x, r)
			}
			return topVal()
		}
		switch x.Op {
		case minic.OpAdd:
			return l.add(r)
		case minic.OpSub:
			return l.sub(r)
		case minic.OpMul:
			return l.mul(r)
		case minic.OpDiv:
			if ev.col != nil {
				ev.col.division(x, r)
			}
			return l.div(r)
		default:
			if ev.col != nil {
				ev.col.division(x, r)
			}
			return l.rem(r)
		}
	case minic.OpLt:
		if !intOp {
			return boolVal(0)
		}
		return cmpLt(l, r)
	case minic.OpLe:
		if !intOp {
			return boolVal(0)
		}
		return cmpLe(l, r)
	case minic.OpGt:
		if !intOp {
			return boolVal(0)
		}
		return cmpLt(r, l)
	case minic.OpGe:
		if !intOp {
			return boolVal(0)
		}
		return cmpLe(r, l)
	case minic.OpEq:
		if !intOp {
			return boolVal(0)
		}
		return cmpEq(l, r)
	case minic.OpNe:
		if !intOp {
			return boolVal(0)
		}
		eq := cmpEq(l, r)
		return boolVal(-eq.truth())
	case minic.OpLAnd:
		lt, rt := l.truth(), r.truth()
		switch {
		case lt < 0 || rt < 0:
			return exactVal(0)
		case lt > 0 && rt > 0:
			return exactVal(1)
		}
		return boolVal(0)
	case minic.OpLOr:
		lt, rt := l.truth(), r.truth()
		switch {
		case lt > 0 || rt > 0:
			return exactVal(1)
		case lt < 0 && rt < 0:
			return exactVal(0)
		}
		return boolVal(0)
	}
	return topVal()
}

func (ev *evaluator) assign(x *minic.AssignExpr) Val {
	rhs := ev.expr(x.RHS)
	switch lhs := x.LHS.(type) {
	case *minic.Ident:
		v := ev.a.res.useOf[lhs]
		nv := rhs
		if x.Op != nil {
			cur := ev.get(v)
			nv = applyBin(*x.Op, cur, rhs, isIntExpr(lhs) && isIntExpr(x.RHS))
		}
		if !isIntExpr(lhs) {
			nv = topVal()
		}
		if v != nil && v.tracked {
			ev.set(v, nv)
		}
		return nv
	case *minic.Index:
		ev.index(lhs, true)
		return topVal()
	case *minic.VecElem:
		iv := ev.expr(lhs.Idx)
		if _, ok := lhs.Vec.(*minic.Ident); !ok {
			ev.expr(lhs.Vec)
		}
		if ev.col != nil {
			ev.col.vecElem(lhs, iv)
		}
		return topVal()
	case *minic.VecLoad:
		iv := ev.expr(lhs.Idx)
		if _, ok := lhs.Base.(*minic.Ident); !ok {
			ev.expr(lhs.Base)
		}
		if ev.col != nil {
			ev.col.vecAccess(lhs, iv, true)
		}
		return topVal()
	default:
		ev.expr(lhs)
		return topVal()
	}
}

func applyBin(op minic.BinOp, l, r Val, intOp bool) Val {
	if !intOp {
		return topVal()
	}
	switch op {
	case minic.OpAdd:
		return l.add(r)
	case minic.OpSub:
		return l.sub(r)
	case minic.OpMul:
		return l.mul(r)
	case minic.OpDiv:
		return l.div(r)
	case minic.OpRem:
		return l.rem(r)
	}
	return topVal()
}
