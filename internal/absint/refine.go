package absint

import "paravis/internal/minic"

// refine produces the edge state for taking cond with the given truth
// sense. Returns ok=false when the edge is provably dead (the refined
// state is bottom). The refinement only narrows identifier values —
// everything else stays as computed by the transfer function — so it is
// always a sound over-approximation of the concrete edge states.
func refine(a *analysis, out state, cond minic.Expr, sense bool, inRegion bool) (state, bool) {
	st := cloneState(out)
	if impure(cond) {
		// A side-effecting condition (rare): apply its effects once, keep
		// only the truth-contradiction check, skip narrowing.
		ev := &evaluator{a: a, st: st, inRegion: inRegion}
		t := ev.expr(cond).truth()
		if (sense && t < 0) || (!sense && t > 0) {
			return st, false
		}
		return st, true
	}
	ok := refineInto(a, st, cond, sense, inRegion)
	return st, ok
}

// impure reports whether evaluating e could change tracked state.
func impure(e minic.Expr) bool {
	switch e.(type) {
	case *minic.AssignExpr, *minic.IncDec:
		return true
	}
	for _, sub := range children(e) {
		if impure(sub) {
			return true
		}
	}
	return false
}

// refineInto narrows st in place; false means contradiction (dead edge).
func refineInto(a *analysis, st state, cond minic.Expr, sense bool, inRegion bool) bool {
	switch x := cond.(type) {
	case *minic.Unary:
		if !x.Neg { // logical not
			return refineInto(a, st, x.X, !sense, inRegion)
		}
	case *minic.Binary:
		switch x.Op {
		case minic.OpLAnd:
			if sense {
				return refineInto(a, st, x.L, true, inRegion) &&
					refineInto(a, st, x.R, true, inRegion)
			}
			return refineOr(a, st, x.L, false, x.R, false, inRegion)
		case minic.OpLOr:
			if !sense {
				return refineInto(a, st, x.L, false, inRegion) &&
					refineInto(a, st, x.R, false, inRegion)
			}
			return refineOr(a, st, x.L, true, x.R, true, inRegion)
		case minic.OpLt, minic.OpLe, minic.OpGt, minic.OpGe, minic.OpEq, minic.OpNe:
			return refineCmp(a, st, x, sense, inRegion)
		}
	case *minic.Ident:
		// `if (x)` — true excludes 0, false pins to 0.
		v := a.res.useOf[x]
		if v == nil || !v.tracked || (v.sharedMut && inRegion) {
			return true
		}
		cur := stGet(st, v)
		var nv Val
		if sense {
			nv = excludeZero(cur)
		} else {
			nv = cur.meet(exactVal(0))
		}
		if nv.isBottom() {
			return false
		}
		stSet(st, v, nv)
		return true
	}
	// Generic fallback: evaluate the condition in the current state and
	// check for a truth contradiction.
	ev := &evaluator{a: a, st: cloneState(st), inRegion: inRegion}
	t := ev.expr(cond).truth()
	if (sense && t < 0) || (!sense && t > 0) {
		return false
	}
	return true
}

// refineOr refines along "L(with senseL) OR R(with senseR)": the result
// must cover both disjuncts, so each is refined independently and the
// surviving states joined. Both dead means the edge is dead.
func refineOr(a *analysis, st state, l minic.Expr, senseL bool, r minic.Expr, senseR bool, inRegion bool) bool {
	ls := cloneState(st)
	rs := cloneState(st)
	lok := refineInto(a, ls, l, senseL, inRegion)
	rok := refineInto(a, rs, r, senseR, inRegion)
	switch {
	case lok && rok:
		merged := joinStates(ls, rs)
		for k := range st {
			if _, keep := merged[k]; !keep {
				delete(st, k)
			}
		}
		for k, v := range merged {
			st[k] = v
		}
		return true
	case lok:
		replaceState(st, ls)
		return true
	case rok:
		replaceState(st, rs)
		return true
	}
	return false
}

func replaceState(dst, src state) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

func stGet(st state, v *variable) Val {
	if val, ok := st[v.id]; ok {
		return val
	}
	return topVal()
}

func stSet(st state, v *variable, val Val) {
	if val.isTop() {
		delete(st, v.id)
	} else {
		st[v.id] = val
	}
}

// excludeZero trims a zero endpoint off the interval (a full != split
// would need disjunctions; endpoint trimming is the sound fragment).
func excludeZero(v Val) Val {
	if !v.C.member(0) {
		return v
	}
	if v.I.HasLo && v.I.Lo == 0 {
		return v.meet(intervalVal(AtLeast(1)))
	}
	if v.I.HasHi && v.I.Hi == 0 {
		return v.meet(intervalVal(AtMost(-1)))
	}
	if c, ok := v.constVal(); ok && c == 0 {
		return bottomVal()
	}
	return v
}

// refineCmp narrows identifier operands of a comparison. Both sides are
// evaluated first; then each side that is a refinable identifier is met
// with the bound implied by the other side's value.
func refineCmp(a *analysis, st state, x *minic.Binary, sense bool, inRegion bool) bool {
	if !isIntExpr(x.L) || !isIntExpr(x.R) {
		return true
	}
	// Normalize to op in {<, <=, ==, !=} with the stated sense.
	op := x.Op
	l, r := x.L, x.R
	switch op {
	case minic.OpGt:
		op, l, r = minic.OpLt, r, l
	case minic.OpGe:
		op, l, r = minic.OpLe, r, l
	}
	if !sense {
		switch op {
		case minic.OpLt: // !(l < r)  ==  r <= l
			op, l, r = minic.OpLe, r, l
		case minic.OpLe: // !(l <= r) ==  r < l
			op, l, r = minic.OpLt, r, l
		case minic.OpEq:
			op = minic.OpNe
		case minic.OpNe:
			op = minic.OpEq
		}
	}

	ev := &evaluator{a: a, st: st, inRegion: inRegion}
	lv := ev.expr(l)
	rv := ev.expr(r)
	if lv.isBottom() || rv.isBottom() {
		return false
	}

	lvar := refinable(a, l, inRegion)
	rvar := refinable(a, r, inRegion)

	apply := func(v *variable, nv Val) bool {
		if nv.isBottom() {
			return false
		}
		if v != nil {
			stSet(st, v, nv)
		}
		return true
	}

	switch op {
	case minic.OpLt: // l < r
		var nl, nr Val = lv, rv
		if rv.I.HasHi && rv.I.Hi > -1<<62 {
			nl = lv.meet(intervalVal(AtMost(rv.I.Hi - 1)))
		}
		if lv.I.HasLo && lv.I.Lo < 1<<62 {
			nr = rv.meet(intervalVal(AtLeast(lv.I.Lo + 1)))
		}
		return apply(lvar, nl) && apply(rvar, nr)
	case minic.OpLe: // l <= r
		var nl, nr Val = lv, rv
		if rv.I.HasHi {
			nl = lv.meet(intervalVal(AtMost(rv.I.Hi)))
		}
		if lv.I.HasLo {
			nr = rv.meet(intervalVal(AtLeast(lv.I.Lo)))
		}
		return apply(lvar, nl) && apply(rvar, nr)
	case minic.OpEq:
		m := lv.meet(rv)
		return apply(lvar, m) && apply(rvar, m)
	case minic.OpNe:
		nl, nr := trimNe(lv, rv), trimNe(rv, lv)
		return apply(lvar, nl) && apply(rvar, nr)
	}
	return true
}

// refinable returns the tracked variable behind e when its state entry
// may be narrowed, else nil.
func refinable(a *analysis, e minic.Expr, inRegion bool) *variable {
	id, ok := e.(*minic.Ident)
	if !ok {
		return nil
	}
	v := a.res.useOf[id]
	if v == nil || !v.tracked || (v.sharedMut && inRegion) {
		return nil
	}
	return v
}

// trimNe refines a under "a != b": when b is an exact constant sitting
// on an endpoint of a, the endpoint moves inward; an interior hole is
// not representable and a is returned unchanged.
func trimNe(a, b Val) Val {
	c, ok := b.constVal()
	if !ok || !a.I.Contains(c) || !a.C.member(c) {
		return a
	}
	if v, isC := a.constVal(); isC && v == c {
		return bottomVal()
	}
	if a.I.HasLo && a.I.Lo == c {
		return a.meet(intervalVal(AtLeast(c + 1)))
	}
	if a.I.HasHi && a.I.Hi == c {
		return a.meet(intervalVal(AtMost(c - 1)))
	}
	return a
}
