package absint

import "paravis/internal/minic"

// This file lowers the structured statement AST to an explicit control
// flow graph the worklist solver iterates over. MiniC has no break,
// continue or goto, so the only back edges are for-loop latches and
// every cycle passes through a loop-head block — the widening points.

type instrKind int

const (
	ikStmt instrKind = iota // DeclStmt / ExprStmt / BarrierStmt
	ikTargetEnter
	ikTargetExit
)

type instr struct {
	kind instrKind
	s    minic.Stmt
	ts   *minic.TargetStmt // for enter/exit
}

// block is one straight-line run of instructions ended by either an
// unconditional jump (cond nil, next possibly nil = function exit) or a
// two-way branch on cond (tsucc / fsucc).
type block struct {
	id     int
	instrs []instr

	cond     minic.Expr
	condStmt minic.Stmt // the IfStmt/ForStmt owning cond, for reporting
	tsucc    *block
	fsucc    *block
	next     *block

	isLoopHead bool
	loop       *minic.ForStmt
	latch      *block // the back-edge predecessor of a loop head
	inRegion   bool

	preds []*block
	order int // reverse-postorder index
}

type cfg struct {
	entry  *block
	blocks []*block
	rpo    []*block
	heads  map[*minic.ForStmt]*block
}

type cfgBuilder struct {
	g        *cfg
	inRegion bool
}

func (b *cfgBuilder) newBlock() *block {
	bl := &block{id: len(b.g.blocks), inRegion: b.inRegion}
	b.g.blocks = append(b.g.blocks, bl)
	return bl
}

// buildCFG lowers the function body. Unreachable trailing code (after a
// return) still gets blocks; they simply never receive a flow state.
func buildCFG(fn *minic.FuncDecl) *cfg {
	g := &cfg{heads: map[*minic.ForStmt]*block{}}
	b := &cfgBuilder{g: g}
	g.entry = b.newBlock()
	end := b.stmt(g.entry, fn.Body)
	if end != nil {
		end.next = nil
	}
	g.wire()
	return g
}

// stmt appends s to cur and returns the block where control continues,
// or nil when the path returned.
func (b *cfgBuilder) stmt(cur *block, s minic.Stmt) *block {
	if cur == nil {
		// Dead code after a return: give it an unreachable block so the
		// walk stays uniform.
		cur = b.newBlock()
	}
	switch st := s.(type) {
	case *minic.BlockStmt:
		for _, c := range st.Stmts {
			cur = b.stmt(cur, c)
		}
		return cur
	case *minic.DeclStmt, *minic.ExprStmt, *minic.BarrierStmt:
		cur.instrs = append(cur.instrs, instr{kind: ikStmt, s: s})
		return cur
	case *minic.ReturnStmt:
		cur.instrs = append(cur.instrs, instr{kind: ikStmt, s: s})
		cur.next = nil
		return nil
	case *minic.CriticalStmt:
		return b.stmt(cur, st.Body)
	case *minic.IfStmt:
		thenB := b.newBlock()
		after := b.newBlock()
		cur.cond, cur.condStmt = st.Cond, st
		cur.tsucc = thenB
		if st.Else != nil {
			elseB := b.newBlock()
			cur.fsucc = elseB
			if end := b.stmt(elseB, st.Else); end != nil {
				end.next = after
			}
		} else {
			cur.fsucc = after
		}
		if end := b.stmt(thenB, st.Then); end != nil {
			end.next = after
		}
		return after
	case *minic.ForStmt:
		for _, c := range st.Init {
			cur = b.stmt(cur, c)
		}
		head := b.newBlock()
		head.isLoopHead = true
		head.loop = st
		b.g.heads[st] = head
		cur.next = head
		body := b.newBlock()
		after := b.newBlock()
		if st.Cond != nil {
			head.cond, head.condStmt = st.Cond, st
			head.tsucc, head.fsucc = body, after
		} else {
			head.next = body // for(;;): after is unreachable
		}
		end := b.stmt(body, st.Body)
		for _, c := range st.Post {
			end = b.stmt(end, c)
		}
		if end != nil {
			end.next = head
			head.latch = end
		}
		return after
	case *minic.TargetStmt:
		cur.instrs = append(cur.instrs, instr{kind: ikTargetEnter, s: st, ts: st})
		saved := b.inRegion
		b.inRegion = true
		bodyB := b.newBlock()
		cur.next = bodyB
		end := b.stmt(bodyB, st.Body)
		b.inRegion = saved
		after := b.newBlock()
		if end != nil {
			end.next = after
		}
		after.instrs = append(after.instrs, instr{kind: ikTargetExit, s: st, ts: st})
		return after
	}
	return cur
}

func (bl *block) succs() []*block {
	if bl.cond != nil {
		if bl.tsucc == bl.fsucc {
			return []*block{bl.tsucc}
		}
		return []*block{bl.tsucc, bl.fsucc}
	}
	if bl.next != nil {
		return []*block{bl.next}
	}
	return nil
}

// wire fills predecessor lists and the reverse postorder.
func (g *cfg) wire() {
	for _, bl := range g.blocks {
		for _, s := range bl.succs() {
			s.preds = append(s.preds, bl)
		}
	}
	seen := make([]bool, len(g.blocks))
	var post []*block
	var dfs func(bl *block)
	dfs = func(bl *block) {
		if seen[bl.id] {
			return
		}
		seen[bl.id] = true
		for _, s := range bl.succs() {
			dfs(s)
		}
		post = append(post, bl)
	}
	dfs(g.entry)
	for i := len(post) - 1; i >= 0; i-- {
		bl := post[i]
		bl.order = len(g.rpo)
		g.rpo = append(g.rpo, bl)
	}
}
