package absint

// This file implements the product abstract domain the interpreter runs
// over: machine-integer intervals with explicit missing bounds (so top
// needs no sentinel values and overflow simply drops a bound) crossed
// with arithmetic congruences x ≡ Rem (mod Mod) that track strides and
// parity through division and remainder — the precision the seed
// kernels' lane arithmetic (v/VECTOR_LEN, v%VECTOR_LEN) needs. The two
// components exchange information through reduce().

import (
	"fmt"
	"math"
)

// Interval is a contiguous set of int64 values. A missing bound
// (HasLo/HasHi false) means unbounded on that side; Empty marks the
// bottom element. The zero value is top (all integers).
type Interval struct {
	Empty bool
	HasLo bool
	HasHi bool
	Lo    int64
	Hi    int64
}

// Top returns the full interval.
func Top() Interval { return Interval{} }

// Bottom returns the empty interval.
func Bottom() Interval { return Interval{Empty: true} }

// Exact returns the singleton interval {v}.
func Exact(v int64) Interval { return Interval{HasLo: true, HasHi: true, Lo: v, Hi: v} }

// Range returns [lo, hi]; lo > hi yields bottom.
func Range(lo, hi int64) Interval {
	if lo > hi {
		return Bottom()
	}
	return Interval{HasLo: true, HasHi: true, Lo: lo, Hi: hi}
}

// AtLeast returns [lo, +inf).
func AtLeast(lo int64) Interval { return Interval{HasLo: true, Lo: lo} }

// AtMost returns (-inf, hi].
func AtMost(hi int64) Interval { return Interval{HasHi: true, Hi: hi} }

// IsTop reports whether the interval carries no information.
func (a Interval) IsTop() bool { return !a.Empty && !a.HasLo && !a.HasHi }

// String renders the interval for diagnostics: a bare number for
// singletons, "[lo, hi]" otherwise with "-inf"/"+inf" for missing ends.
func (a Interval) String() string {
	if a.Empty {
		return "(empty)"
	}
	if c, ok := a.Const(); ok {
		return fmt.Sprintf("%d", c)
	}
	lo, hi := "-inf", "+inf"
	if a.HasLo {
		lo = fmt.Sprintf("%d", a.Lo)
	}
	if a.HasHi {
		hi = fmt.Sprintf("%d", a.Hi)
	}
	return fmt.Sprintf("[%s, %s]", lo, hi)
}

// Bounded reports whether both ends are finite.
func (a Interval) Bounded() bool { return !a.Empty && a.HasLo && a.HasHi }

// Const returns the single value of a singleton interval.
func (a Interval) Const() (int64, bool) {
	if a.Bounded() && a.Lo == a.Hi {
		return a.Lo, true
	}
	return 0, false
}

// Contains reports whether v is a member.
func (a Interval) Contains(v int64) bool {
	if a.Empty {
		return false
	}
	if a.HasLo && v < a.Lo {
		return false
	}
	if a.HasHi && v > a.Hi {
		return false
	}
	return true
}

// Join returns the smallest interval covering both operands.
func (a Interval) Join(b Interval) Interval {
	if a.Empty {
		return b
	}
	if b.Empty {
		return a
	}
	var r Interval
	if a.HasLo && b.HasLo {
		r.HasLo, r.Lo = true, min64(a.Lo, b.Lo)
	}
	if a.HasHi && b.HasHi {
		r.HasHi, r.Hi = true, max64(a.Hi, b.Hi)
	}
	return r
}

// Meet returns the intersection.
func (a Interval) Meet(b Interval) Interval {
	if a.Empty || b.Empty {
		return Bottom()
	}
	r := a
	if b.HasLo && (!r.HasLo || b.Lo > r.Lo) {
		r.HasLo, r.Lo = true, b.Lo
	}
	if b.HasHi && (!r.HasHi || b.Hi < r.Hi) {
		r.HasHi, r.Hi = true, b.Hi
	}
	if r.HasLo && r.HasHi && r.Lo > r.Hi {
		return Bottom()
	}
	return r
}

// Equal reports structural equality (bottom compares equal to bottom).
func (a Interval) Equal(b Interval) bool {
	if a.Empty || b.Empty {
		return a.Empty == b.Empty
	}
	if a.HasLo != b.HasLo || a.HasHi != b.HasHi {
		return false
	}
	if a.HasLo && a.Lo != b.Lo {
		return false
	}
	if a.HasHi && a.Hi != b.Hi {
		return false
	}
	return true
}

// widen extrapolates a bound that grew between iterations to the next
// threshold (or drops it), guaranteeing termination of the ascending
// chain. next must cover a (callers join first).
func (a Interval) widen(next Interval, th []int64) Interval {
	if a.Empty {
		return next
	}
	if next.Empty {
		return a
	}
	r := next
	if next.HasLo && (!a.HasLo || next.Lo < a.Lo) {
		// Lower bound decreased: snap down to the largest threshold <= it.
		r.HasLo = false
		for i := len(th) - 1; i >= 0; i-- {
			if th[i] <= next.Lo {
				r.HasLo, r.Lo = true, th[i]
				break
			}
		}
	}
	if next.HasHi && (!a.HasHi || next.Hi > a.Hi) {
		// Upper bound increased: snap up to the smallest threshold >= it.
		r.HasHi = false
		for _, t := range th {
			if t >= next.Hi {
				r.HasHi, r.Hi = true, t
				break
			}
		}
	}
	return r
}

func addOv(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func subOv(a, b int64) (int64, bool) {
	if b == math.MinInt64 {
		return 0, false
	}
	return addOv(a, -b)
}

func mulOv(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a == math.MinInt64 || b == math.MinInt64 {
		return 0, false
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// Add returns the interval sum; a bound that overflows is dropped.
func (a Interval) Add(b Interval) Interval {
	if a.Empty || b.Empty {
		return Bottom()
	}
	var r Interval
	if a.HasLo && b.HasLo {
		if v, ok := addOv(a.Lo, b.Lo); ok {
			r.HasLo, r.Lo = true, v
		}
	}
	if a.HasHi && b.HasHi {
		if v, ok := addOv(a.Hi, b.Hi); ok {
			r.HasHi, r.Hi = true, v
		}
	}
	return r
}

// Neg returns the negated interval.
func (a Interval) Neg() Interval {
	if a.Empty {
		return Bottom()
	}
	var r Interval
	if a.HasHi && a.Hi != math.MinInt64 {
		r.HasLo, r.Lo = true, -a.Hi
	}
	if a.HasLo && a.Lo != math.MinInt64 {
		r.HasHi, r.Hi = true, -a.Lo
	}
	return r
}

// Sub returns a - b.
func (a Interval) Sub(b Interval) Interval { return a.Add(b.Neg()) }

// Mul returns the interval product. Fully bounded operands multiply
// exactly; half-bounded cases are handled for a constant factor and for
// non-negative operands; anything else is top.
func (a Interval) Mul(b Interval) Interval {
	if a.Empty || b.Empty {
		return Bottom()
	}
	if c, ok := b.Const(); ok {
		return a.mulConst(c)
	}
	if c, ok := a.Const(); ok {
		return b.mulConst(c)
	}
	if a.Bounded() && b.Bounded() {
		lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
		for _, x := range []int64{a.Lo, a.Hi} {
			for _, y := range []int64{b.Lo, b.Hi} {
				p, ok := mulOv(x, y)
				if !ok {
					return Top()
				}
				lo, hi = min64(lo, p), max64(hi, p)
			}
		}
		return Range(lo, hi)
	}
	if a.HasLo && a.Lo >= 0 && b.HasLo && b.Lo >= 0 {
		// Both non-negative: the product is at least Lo*Lo.
		r := Interval{}
		if v, ok := mulOv(a.Lo, b.Lo); ok {
			r.HasLo, r.Lo = true, v
		} else {
			r.HasLo, r.Lo = true, 0
		}
		return r
	}
	return Top()
}

func (a Interval) mulConst(c int64) Interval {
	if c == 0 {
		return Exact(0)
	}
	var r Interval
	scale := func(v int64) (int64, bool) { return mulOv(v, c) }
	if c > 0 {
		if a.HasLo {
			if v, ok := scale(a.Lo); ok {
				r.HasLo, r.Lo = true, v
			}
		}
		if a.HasHi {
			if v, ok := scale(a.Hi); ok {
				r.HasHi, r.Hi = true, v
			}
		}
	} else {
		if a.HasHi {
			if v, ok := scale(a.Hi); ok {
				r.HasLo, r.Lo = true, v
			}
		}
		if a.HasLo {
			if v, ok := scale(a.Lo); ok {
				r.HasHi, r.Hi = true, v
			}
		}
	}
	return r
}

// Div returns the C (truncating) quotient interval. Precise for a
// nonzero constant divisor (truncation is monotone); a divisor proven
// >= 1 pulls the result toward zero; anything else is top.
func (a Interval) Div(b Interval) Interval {
	if a.Empty || b.Empty {
		return Bottom()
	}
	if c, ok := b.Const(); ok && c != 0 {
		var r Interval
		q := func(v int64) (int64, bool) {
			if v == math.MinInt64 && c == -1 {
				return 0, false
			}
			return v / c, true
		}
		if c > 0 {
			if a.HasLo {
				if v, ok := q(a.Lo); ok {
					r.HasLo, r.Lo = true, v
				}
			}
			if a.HasHi {
				if v, ok := q(a.Hi); ok {
					r.HasHi, r.Hi = true, v
				}
			}
		} else {
			if a.HasHi {
				if v, ok := q(a.Hi); ok {
					r.HasLo, r.Lo = true, v
				}
			}
			if a.HasLo {
				if v, ok := q(a.Lo); ok {
					r.HasHi, r.Hi = true, v
				}
			}
		}
		return r
	}
	if b.HasLo && b.Lo >= 1 {
		// Dividing by >= 1 moves the value toward zero.
		var r Interval
		if a.HasLo {
			r.HasLo, r.Lo = true, min64(a.Lo, 0)
		}
		if a.HasHi {
			r.HasHi, r.Hi = true, max64(a.Hi, 0)
		}
		return r
	}
	return Top()
}

// Rem returns the C remainder interval (sign follows the dividend).
func (a Interval) Rem(b Interval) Interval {
	if a.Empty || b.Empty {
		return Bottom()
	}
	var m int64
	if c, ok := b.Const(); ok && c != 0 && c != math.MinInt64 {
		m = c
		if m < 0 {
			m = -m
		}
		// x fully within [0, m-1] is its own remainder.
		if a.HasLo && a.Lo >= 0 && a.HasHi && a.Hi < m {
			return a
		}
	} else if b.HasLo && b.Lo >= 1 && b.HasHi {
		m = b.Hi
	} else if b.HasLo && b.Lo >= 1 {
		// Divisor >= 1, unbounded: |x % d| <= |x|.
		if a.HasLo && a.Lo >= 0 {
			r := Interval{HasLo: true, Lo: 0}
			if a.HasHi {
				r.HasHi, r.Hi = true, a.Hi
			}
			return r
		}
		return Top()
	} else {
		return Top()
	}
	switch {
	case a.HasLo && a.Lo >= 0:
		hi := m - 1
		if a.HasHi && a.Hi < hi {
			hi = a.Hi
		}
		return Range(0, hi)
	case a.HasHi && a.Hi <= 0:
		lo := -(m - 1)
		if a.HasLo && a.Lo > lo {
			lo = a.Lo
		}
		return Range(lo, 0)
	default:
		return Range(-(m - 1), m-1)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// --- Congruences ---

// Cong is the congruence x ≡ Rem (mod Mod). Mod == 1 carries no
// information (top); Mod == 0 pins x to the constant Rem. Invariant:
// Mod >= 0 and 0 <= Rem < Mod whenever Mod > 0. Construct via congTop,
// congConst or congMod — the zero value claims "constantly 0".
type Cong struct {
	Mod int64
	Rem int64
}

func congTop() Cong          { return Cong{Mod: 1} }
func congConst(v int64) Cong { return Cong{Mod: 0, Rem: v} }

// congMod builds x ≡ r (mod m) for m >= 1.
func congMod(m, r int64) Cong {
	if m <= 1 {
		if m == 0 {
			return congConst(r)
		}
		return congTop()
	}
	return Cong{Mod: m, Rem: posMod(r, m)}
}

func (c Cong) isTop() bool { return c.Mod == 1 }

// member reports whether v satisfies the congruence.
func (c Cong) member(v int64) bool {
	if c.Mod == 0 {
		return v == c.Rem
	}
	return posMod(v, c.Mod) == c.Rem
}

func posMod(v, m int64) int64 {
	r := v % m
	if r < 0 {
		r += m
	}
	return r
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func (c Cong) add(o Cong) Cong {
	if c.Mod == 0 && o.Mod == 0 {
		if v, ok := addOv(c.Rem, o.Rem); ok {
			return congConst(v)
		}
		return congTop()
	}
	g := gcd64(c.Mod, o.Mod)
	if g == 0 {
		return congTop()
	}
	s, ok := addOv(posMod(c.Rem, g), posMod(o.Rem, g))
	if !ok {
		return congTop()
	}
	return congMod(g, s)
}

func (c Cong) neg() Cong {
	if c.Mod == 0 {
		if c.Rem == math.MinInt64 {
			return congTop()
		}
		return congConst(-c.Rem)
	}
	return congMod(c.Mod, c.Mod-c.Rem)
}

func (c Cong) sub(o Cong) Cong { return c.add(o.neg()) }

func (c Cong) mul(o Cong) Cong {
	if c.Mod == 0 && o.Mod == 0 {
		if v, ok := mulOv(c.Rem, o.Rem); ok {
			return congConst(v)
		}
		return congTop()
	}
	mm, ok1 := mulOv(c.Mod, o.Mod)
	mr, ok2 := mulOv(c.Mod, o.Rem)
	rm, ok3 := mulOv(c.Rem, o.Mod)
	rr, ok4 := mulOv(c.Rem, o.Rem)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return congTop()
	}
	g := gcd64(gcd64(mm, mr), rm)
	if g == 0 {
		return congConst(rr)
	}
	return congMod(g, rr)
}

func (c Cong) join(o Cong) Cong {
	d, ok := subOv(c.Rem, o.Rem)
	if !ok {
		return congTop()
	}
	g := gcd64(gcd64(c.Mod, o.Mod), d)
	if g == 0 {
		return c // both exact, equal remainders
	}
	return congMod(g, c.Rem)
}

// meet refines toward the intersection; ok=false means the intersection
// is provably empty. When the exact meet is awkward (two incomparable
// moduli) it soundly returns the finer operand.
func (c Cong) meet(o Cong) (Cong, bool) {
	switch {
	case c.isTop():
		return o, true
	case o.isTop():
		return c, true
	case c.Mod == 0:
		return c, o.member(c.Rem)
	case o.Mod == 0:
		return o, c.member(o.Rem)
	}
	g := gcd64(c.Mod, o.Mod)
	if posMod(c.Rem, g) != posMod(o.Rem, g) {
		return c, false
	}
	if c.Mod >= o.Mod {
		return c, true
	}
	return o, true
}

// divExact divides by a constant c that exactly divides every member
// (c | Mod and c | Rem), so no truncation occurs.
func (c Cong) divExact(d int64) (Cong, bool) {
	if d <= 0 {
		return congTop(), false
	}
	if c.Mod%d != 0 {
		return congTop(), false
	}
	if c.Mod == 0 {
		if c.Rem%d != 0 {
			return congTop(), false
		}
		return congConst(c.Rem / d), true
	}
	if posMod(c.Rem, d) != 0 {
		return congTop(), false
	}
	return congMod(c.Mod/d, c.Rem/d), true
}

// remConst folds x % d for non-negative x when d divides the modulus.
func (c Cong) remConst(d int64, nonNeg bool) (Cong, bool) {
	if d <= 0 || !nonNeg {
		return congTop(), false
	}
	if c.Mod == 0 {
		return congConst(posMod(c.Rem, d)), true
	}
	if c.Mod%d == 0 {
		return congConst(posMod(c.Rem, d)), true
	}
	return congTop(), false
}

// --- Product domain ---

// Val is one abstract value: an interval refined by a congruence. The
// bottom element is any Val whose interval is empty.
type Val struct {
	I Interval
	C Cong
}

func topVal() Val          { return Val{I: Top(), C: congTop()} }
func exactVal(v int64) Val { return Val{I: Exact(v), C: congConst(v)} }
func bottomVal() Val       { return Val{I: Bottom(), C: congTop()} }
func intervalVal(i Interval) Val {
	return reduce(Val{I: i, C: congTop()})
}

func (v Val) isBottom() bool { return v.I.Empty }
func (v Val) isTop() bool    { return v.I.IsTop() && v.C.isTop() }

// reduce exchanges information between the components: a singleton
// interval pins the congruence, and a nontrivial congruence tightens
// finite interval ends to the nearest member (possibly emptying it).
func reduce(v Val) Val {
	if v.I.Empty {
		return bottomVal()
	}
	if v.C.Mod == 0 {
		v.I = v.I.Meet(Exact(v.C.Rem))
		if v.I.Empty {
			return bottomVal()
		}
		return v
	}
	if c, ok := v.I.Const(); ok {
		if !v.C.member(c) {
			return bottomVal()
		}
		v.C = congConst(c)
		return v
	}
	if v.C.Mod > 1 {
		if v.I.HasLo {
			if d, ok := subOv(v.C.Rem, v.I.Lo); ok {
				v.I.Lo += posMod(d, v.C.Mod)
			}
		}
		if v.I.HasHi {
			if d, ok := subOv(v.I.Hi, v.C.Rem); ok {
				v.I.Hi -= posMod(d, v.C.Mod)
			}
		}
		if v.I.HasLo && v.I.HasHi && v.I.Lo > v.I.Hi {
			return bottomVal()
		}
		if c, ok := v.I.Const(); ok {
			v.C = congConst(c)
		}
	}
	return v
}

func (v Val) add(o Val) Val { return reduce(Val{I: v.I.Add(o.I), C: v.C.add(o.C)}) }
func (v Val) sub(o Val) Val { return reduce(Val{I: v.I.Sub(o.I), C: v.C.sub(o.C)}) }
func (v Val) mul(o Val) Val { return reduce(Val{I: v.I.Mul(o.I), C: v.C.mul(o.C)}) }
func (v Val) neg() Val      { return reduce(Val{I: v.I.Neg(), C: v.C.neg()}) }

func (v Val) div(o Val) Val {
	r := Val{I: v.I.Div(o.I), C: congTop()}
	if c, ok := o.constVal(); ok && c > 0 {
		if dc, ok := v.C.divExact(c); ok && (v.I.HasLo && v.I.Lo >= 0 || v.C.Mod == 0) {
			// Exact division: the quotient keeps the scaled stride.
			r.C = dc
		}
	}
	return reduce(r)
}

func (v Val) rem(o Val) Val {
	r := Val{I: v.I.Rem(o.I), C: congTop()}
	if c, ok := o.constVal(); ok && c > 0 {
		nonNeg := v.I.HasLo && v.I.Lo >= 0
		if rc, ok := v.C.remConst(c, nonNeg || v.C.Mod == 0 && v.C.Rem >= 0); ok {
			r.C = rc
		}
	}
	return reduce(r)
}

func (v Val) join(o Val) Val {
	if v.isBottom() {
		return o
	}
	if o.isBottom() {
		return v
	}
	return reduce(Val{I: v.I.Join(o.I), C: v.C.join(o.C)})
}

func (v Val) meet(o Val) Val {
	c, ok := v.C.meet(o.C)
	if !ok {
		return bottomVal()
	}
	return reduce(Val{I: v.I.Meet(o.I), C: c})
}

func (v Val) widen(next Val, th []int64) Val {
	if v.isBottom() {
		return next
	}
	if next.isBottom() {
		return v
	}
	// The congruence lattice has finite descending chains (each join
	// divides the previous modulus), so only the interval needs widening.
	return reduce(Val{I: v.I.widen(next.I, th), C: next.C})
}

func (v Val) equal(o Val) bool {
	if v.isBottom() || o.isBottom() {
		return v.isBottom() == o.isBottom()
	}
	return v.I.Equal(o.I) && v.C == o.C
}

func (v Val) constVal() (int64, bool) { return v.I.Const() }

// truth classifies v as a condition: +1 provably nonzero, -1 provably
// zero, 0 undecided.
func (v Val) truth() int {
	if v.isBottom() {
		return 0
	}
	if c, ok := v.constVal(); ok {
		if c == 0 {
			return -1
		}
		return +1
	}
	if !v.I.Contains(0) || !v.C.member(0) {
		return +1
	}
	return 0
}

// Comparison evaluation: exact 0/1 when provable, else [0,1].

func boolVal(t int) Val {
	switch {
	case t > 0:
		return exactVal(1)
	case t < 0:
		return exactVal(0)
	default:
		return intervalVal(Range(0, 1))
	}
}

func cmpLt(a, b Val) Val {
	if a.isBottom() || b.isBottom() {
		return bottomVal()
	}
	if a.I.HasHi && b.I.HasLo && a.I.Hi < b.I.Lo {
		return exactVal(1)
	}
	if a.I.HasLo && b.I.HasHi && a.I.Lo >= b.I.Hi {
		return exactVal(0)
	}
	return boolVal(0)
}

func cmpLe(a, b Val) Val {
	if a.isBottom() || b.isBottom() {
		return bottomVal()
	}
	if a.I.HasHi && b.I.HasLo && a.I.Hi <= b.I.Lo {
		return exactVal(1)
	}
	if a.I.HasLo && b.I.HasHi && a.I.Lo > b.I.Hi {
		return exactVal(0)
	}
	return boolVal(0)
}

func cmpEq(a, b Val) Val {
	if a.isBottom() || b.isBottom() {
		return bottomVal()
	}
	ca, oka := a.constVal()
	cb, okb := b.constVal()
	if oka && okb {
		return boolVal(map[bool]int{true: 1, false: -1}[ca == cb])
	}
	if a.meet(b).isBottom() {
		return exactVal(0)
	}
	return boolVal(0)
}
