package absint

import "paravis/internal/minic"

// variable is one resolved declaration (parameter or local).
type variable struct {
	id      int
	name    string
	typ     *minic.Type
	isParam bool
	// tracked: the flow state carries a value for it (plain int scalar).
	tracked bool
	// declaredInRegion: the declaration sits inside the omp target body,
	// making the variable thread-private.
	declaredInRegion bool
	// sharedMut: declared outside the target region but assigned inside
	// it — other omp threads may write it concurrently, so reads inside
	// the region are untrackable.
	sharedMut bool
	// lanes/dims describe array/vector geometry for bounds checks.
	lanes int
	dims  []int
}

// resolution binds identifiers to variables with C block scoping. Sema
// has already rejected undeclared names, so lookups cannot fail for
// well-typed programs; unresolved identifiers simply evaluate to top.
type resolution struct {
	vars   []*variable
	useOf  map[*minic.Ident]*variable
	declOf map[*minic.DeclStmt]*variable
	mapOf  map[string]*variable // parameter name -> variable, for map clauses
	target *minic.TargetStmt
	nt     int // omp thread count (1 when no target or unspecified)
}

func resolveFn(fn *minic.FuncDecl) *resolution {
	r := &resolution{
		useOf:  map[*minic.Ident]*variable{},
		declOf: map[*minic.DeclStmt]*variable{},
		mapOf:  map[string]*variable{},
		nt:     1,
	}
	scopes := []map[string]*variable{{}}
	declare := func(v *variable) {
		v.id = len(r.vars)
		r.vars = append(r.vars, v)
		scopes[len(scopes)-1][v.name] = v
	}
	lookup := func(name string) *variable {
		for i := len(scopes) - 1; i >= 0; i-- {
			if v, ok := scopes[i][name]; ok {
				return v
			}
		}
		return nil
	}
	newVar := func(name string, typ *minic.Type, isParam, inRegion bool) *variable {
		v := &variable{name: name, typ: typ, isParam: isParam, declaredInRegion: inRegion}
		v.tracked = typ.IsScalar() && typ.Basic == minic.Int
		if typ.IsVector() {
			v.lanes = typ.Lanes
		}
		if typ.IsArray() {
			v.dims = typ.Dims
			v.lanes = 1
			if typ.Elem != nil && typ.Elem.Lanes > 1 {
				v.lanes = typ.Elem.Lanes
			}
		}
		return v
	}
	for _, p := range fn.Params {
		v := newVar(p.Name, p.Type, true, false)
		declare(v)
		r.mapOf[p.Name] = v
	}

	inRegion := false
	var walkS func(s minic.Stmt)
	var walkE func(e minic.Expr)
	walkE = func(e minic.Expr) {
		if e == nil {
			return
		}
		switch x := e.(type) {
		case *minic.Ident:
			if v := lookup(x.Name); v != nil {
				r.useOf[x] = v
			}
			return
		case *minic.AssignExpr:
			if id, ok := x.LHS.(*minic.Ident); ok && inRegion {
				if v := lookup(id.Name); v != nil && !v.declaredInRegion {
					v.sharedMut = true
				}
			}
		case *minic.IncDec:
			if id, ok := x.X.(*minic.Ident); ok && inRegion {
				if v := lookup(id.Name); v != nil && !v.declaredInRegion {
					v.sharedMut = true
				}
			}
		}
		for _, sub := range children(e) {
			walkE(sub)
		}
	}
	walkS = func(s minic.Stmt) {
		switch st := s.(type) {
		case *minic.BlockStmt:
			scopes = append(scopes, map[string]*variable{})
			for _, c := range st.Stmts {
				walkS(c)
			}
			scopes = scopes[:len(scopes)-1]
		case *minic.DeclStmt:
			walkE(st.Init)
			v := newVar(st.Name, st.Typ, false, inRegion)
			declare(v)
			r.declOf[st] = v
		case *minic.ExprStmt:
			walkE(st.X)
		case *minic.ForStmt:
			scopes = append(scopes, map[string]*variable{})
			for _, c := range st.Init {
				walkS(c)
			}
			walkE(st.Cond)
			walkS(st.Body)
			for _, c := range st.Post {
				walkS(c)
			}
			scopes = scopes[:len(scopes)-1]
		case *minic.IfStmt:
			walkE(st.Cond)
			walkS(st.Then)
			if st.Else != nil {
				walkS(st.Else)
			}
		case *minic.ReturnStmt:
			walkE(st.X)
		case *minic.CriticalStmt:
			walkS(st.Body)
		case *minic.TargetStmt:
			r.target = st
			r.nt = st.NumThreads
			if r.nt <= 0 {
				r.nt = 1
			}
			for i := range st.Maps {
				walkE(st.Maps[i].Low)
				walkE(st.Maps[i].Len)
			}
			inRegion = true
			walkS(st.Body)
			inRegion = false
		}
	}
	walkS(fn.Body)
	return r
}

// children returns the direct subexpressions of e, nils omitted.
func children(e minic.Expr) []minic.Expr {
	var out []minic.Expr
	add := func(es ...minic.Expr) {
		for _, x := range es {
			if x != nil {
				out = append(out, x)
			}
		}
	}
	switch x := e.(type) {
	case *minic.Binary:
		add(x.L, x.R)
	case *minic.Unary:
		add(x.X)
	case *minic.Cond:
		add(x.C, x.A, x.B)
	case *minic.Index:
		add(x.Base)
		add(x.Idx...)
	case *minic.VecElem:
		add(x.Vec, x.Idx)
	case *minic.VecLoad:
		add(x.Base, x.Idx)
	case *minic.AssignExpr:
		add(x.LHS, x.RHS)
	case *minic.IncDec:
		add(x.X)
	case *minic.Call:
		add(x.Args...)
	case *minic.Cast:
		add(x.X)
	case *minic.AddrOf:
		add(x.X)
	case *minic.InitList:
		add(x.Elems...)
	}
	return out
}

// exprPos extracts a source position from any expression node.
func exprPos(e minic.Expr) minic.Pos {
	switch x := e.(type) {
	case *minic.Ident:
		return x.Pos
	case *minic.IntLit:
		return x.Pos
	case *minic.FloatLit:
		return x.Pos
	case *minic.Binary:
		return x.Pos
	case *minic.Unary:
		return x.Pos
	case *minic.Cond:
		return x.Pos
	case *minic.Index:
		return x.Pos
	case *minic.VecElem:
		return x.Pos
	case *minic.VecLoad:
		return x.Pos
	case *minic.AssignExpr:
		return x.Pos
	case *minic.IncDec:
		return x.Pos
	case *minic.Call:
		return x.Pos
	case *minic.Cast:
		return x.Pos
	case *minic.AddrOf:
		return x.Pos
	case *minic.InitList:
		return x.Pos
	}
	return minic.Pos{}
}
