package profile

import (
	"testing"
	"testing/quick"
)

func TestStateRecording(t *testing.T) {
	u := New(DefaultConfig(), 4, nil)
	u.SetState(10, 0, StateRunning)
	u.SetState(10, 0, StateRunning) // no-op: same state
	u.SetState(20, 1, StateRunning)
	u.SetState(30, 0, StateSpinning)
	recs := u.StateRecords()
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	// Each record snapshots all threads.
	if len(recs[0].States) != 4 {
		t.Fatalf("record width = %d", len(recs[0].States))
	}
	if recs[2].States[0] != StateSpinning || recs[2].States[1] != StateRunning {
		t.Errorf("snapshot = %v", recs[2].States)
	}
	if u.CurrentState(0) != StateSpinning {
		t.Error("current state wrong")
	}
}

func TestRecordWidths(t *testing.T) {
	u := New(DefaultConfig(), 8, nil)
	if u.StateRecordBits() != 2*8+32 {
		t.Errorf("state record bits = %d", u.StateRecordBits())
	}
	if u.EventRecordBits() != 5*32+32+8 {
		t.Errorf("event record bits = %d", u.EventRecordBits())
	}
}

func TestEventWindows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SamplePeriod = 100
	u := New(cfg, 2, nil)
	u.AddCompute(0, 10, 20)
	u.AddMem(0, 64, false)
	u.AddMem(1, 32, true)
	u.Tick(100) // closes window [0,100)
	u.AddStalls(1, 5)
	u.Tick(250) // closes [100,200) and [200,250 not yet)
	u.Finalize(250)

	evs := u.EventSamples()
	// Window 1: thread 0 (compute+read), thread 1 (write).
	// Window 2: thread 1 stalls. Empty windows are skipped.
	if len(evs) != 3 {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Thread != 0 || evs[0].IntOps != 10 || evs[0].FpOps != 20 || evs[0].ReadBytes != 64 {
		t.Errorf("window 1 thread 0 = %+v", evs[0])
	}
	if evs[1].Thread != 1 || evs[1].WriteBytes != 32 {
		t.Errorf("window 1 thread 1 = %+v", evs[1])
	}
	if evs[2].Thread != 1 || evs[2].Stalls != 5 {
		t.Errorf("window 2 = %+v", evs[2])
	}
}

func TestTotals(t *testing.T) {
	u := New(DefaultConfig(), 2, nil)
	u.AddCompute(0, 3, 7)
	u.AddCompute(0, 2, 1)
	u.AddStalls(0, 4)
	u.AddMem(0, 100, false)
	u.AddMem(0, 50, true)
	u.AddMem(-1, 999, true) // flush engine traffic must be ignored
	stalls, intOps, fpOps, rd, wr := u.TotalsFor(0)
	if stalls != 4 || intOps != 5 || fpOps != 8 || rd != 100 || wr != 50 {
		t.Errorf("totals = %d %d %d %d %d", stalls, intOps, fpOps, rd, wr)
	}
}

func TestBufferFlush(t *testing.T) {
	cfg := Config{Enabled: true, SamplePeriod: 1000, StateBufferLines: 1, EventBufferLines: 1}
	var flushes []int
	u := New(cfg, 8, func(cycle int64, bytes int) { flushes = append(flushes, bytes) })
	// One 512-bit line holds floor(512/48)=10 records of 2*8+32=48 bits.
	for i := 0; i < 25; i++ {
		st := StateRunning
		if i%2 == 1 {
			st = StateIdle
		}
		u.SetState(int64(i), 0, st)
	}
	if len(flushes) != 2 {
		t.Fatalf("flushes = %v, want 2 (25 records, 10 per line)", flushes)
	}
	for _, b := range flushes {
		if b%64 != 0 {
			t.Errorf("flush of %d bytes not line-aligned", b)
		}
	}
	u.Finalize(100)
	if u.Flushes != 3 {
		t.Errorf("final flush missing: %d", u.Flushes)
	}
	if u.FlushedBytes == 0 {
		t.Error("no flushed bytes accounted")
	}
}

func TestDisabledUnit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Enabled = false
	u := New(cfg, 2, func(cycle int64, bytes int) { t.Error("flush from disabled unit") })
	u.SetState(1, 0, StateRunning)
	u.AddCompute(0, 1, 1)
	u.AddStalls(0, 1)
	u.AddMem(0, 64, false)
	u.Tick(5000)
	u.Finalize(10000)
	if len(u.StateRecords()) != 0 || len(u.EventSamples()) != 0 {
		t.Error("disabled unit recorded data")
	}
}

func TestStateDurations(t *testing.T) {
	u := New(DefaultConfig(), 2, nil)
	u.SetState(0, 0, StateRunning)
	u.SetState(50, 1, StateRunning) // thread 1 starts at 50
	u.SetState(100, 0, StateCritical)
	u.SetState(150, 0, StateRunning)
	dur := StateDurations(u.StateRecords(), 2, 1000)
	if dur[0][StateRunning] != 100-0+1000-150 {
		t.Errorf("thread 0 running = %d", dur[0][StateRunning])
	}
	if dur[0][StateCritical] != 50 {
		t.Errorf("thread 0 critical = %d", dur[0][StateCritical])
	}
	if dur[1][StateIdle] != 50 {
		t.Errorf("thread 1 idle = %d", dur[1][StateIdle])
	}
	// Conservation: every thread's durations sum to the end time.
	for th := 0; th < 2; th++ {
		var sum int64
		for s := 0; s < 4; s++ {
			sum += dur[th][s]
		}
		if sum != 1000 {
			t.Errorf("thread %d durations sum to %d", th, sum)
		}
	}
}

// Property: duration conservation holds for arbitrary state-change
// sequences with increasing timestamps.
func TestStateDurationConservationProperty(t *testing.T) {
	f := func(steps []uint8) bool {
		u := New(DefaultConfig(), 3, nil)
		cycle := int64(0)
		for _, s := range steps {
			cycle += int64(s%50) + 1
			u.SetState(cycle, int(s)%3, ThreadState(s%4))
		}
		end := cycle + 10
		dur := StateDurations(u.StateRecords(), 3, end)
		for th := 0; th < 3; th++ {
			var sum int64
			for s := 0; s < 4; s++ {
				sum += dur[th][s]
			}
			if sum != end {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStateStrings(t *testing.T) {
	if StateIdle.String() != "Idle" || StateSpinning.String() != "Spinning" ||
		StateRunning.String() != "Running" || StateCritical.String() != "Critical" {
		t.Error("state names wrong")
	}
}
