// Package profile implements the hardware profiling unit the paper adds to
// the Nymble accelerator: per-thread state tracking (Idle / Running /
// Spinning / Critical, 2 bits each, a full-width record written whenever any
// thread changes state), and periodically sampled event counters (pipeline
// stalls, integer and floating-point operation counts, memory bytes read
// and written). Records accumulate in an on-chip buffer sized in 512-bit
// lines and are flushed to external memory when the buffer is nearly full;
// the flush traffic shares the memory system with the datapath, so the
// profiling perturbation is observable exactly as on the FPGA.
package profile

import (
	"fmt"
	"math"
	"sort"
)

// ThreadState is the paper's 2-bit thread state encoding: 00 idle,
// 01 running, 10 critical, 11 spinning.
type ThreadState uint8

// Thread states.
const (
	StateIdle     ThreadState = 0
	StateRunning  ThreadState = 1
	StateCritical ThreadState = 2
	StateSpinning ThreadState = 3
)

func (s ThreadState) String() string {
	switch s {
	case StateIdle:
		return "Idle"
	case StateRunning:
		return "Running"
	case StateCritical:
		return "Critical"
	case StateSpinning:
		return "Spinning"
	}
	return fmt.Sprintf("ThreadState(%d)", uint8(s))
}

// Config configures the profiling unit.
type Config struct {
	// Enabled turns the whole unit on; a disabled unit records nothing and
	// generates no flush traffic (the "without profiling" baseline).
	Enabled bool
	// SamplePeriod is the event sampling period in cycles ("this period is
	// user-adjustable"). Larger periods coarsen the trace but shrink it.
	SamplePeriod int64
	// StateBufferLines / EventBufferLines size the on-chip buffers in
	// 512-bit lines.
	StateBufferLines int
	EventBufferLines int
}

// DefaultConfig returns the configuration used in the paper's case studies.
func DefaultConfig() Config {
	return Config{
		Enabled:          true,
		SamplePeriod:     1024,
		StateBufferLines: 64,
		EventBufferLines: 64,
	}
}

// StateRecord is one state-change record: the states of all threads plus
// the 32-bit clock count (2*Nthreads+32 bits in hardware).
type StateRecord struct {
	Cycle  int64
	States []ThreadState
}

// StateRun is one run-length-encoded state interval [Begin, End) of a
// single thread. The unit stores each thread's history as a run stream,
// which is naturally sorted by construction and maps 1:1 onto Paraver
// state records without any global sort.
type StateRun struct {
	Begin, End int64
	State      ThreadState
}

// EventSample is one closed sampling window for one thread.
type EventSample struct {
	Start, End int64
	Thread     int
	Stalls     int64
	IntOps     int64
	FpOps      int64 // FP lane-operations (the FLOP count)
	ReadBytes  int64
	WriteBytes int64
}

// FlushFunc models the buffer flush to external memory: it is handed the
// flush size in bytes and the cycle it is issued.
type FlushFunc func(cycle int64, bytes int)

type threadCounters struct {
	stalls, intOps, fpOps, readBytes, writeBytes int64
}

// Unit is the profiling unit instance attached to one accelerator.
type Unit struct {
	cfg      Config
	nThreads int
	flush    FlushFunc

	// Per-thread state history, run-length encoded: runs[t] holds the
	// closed runs, openStart[t] the begin cycle of the run the thread is
	// currently in (its state is cur[t]). One append per actual state
	// change instead of a full-width snapshot per change keeps the stream
	// both smaller and pre-sorted for the trace writer.
	cur         []ThreadState
	runs        [][]StateRun
	openStart   []int64
	statesInBuf int

	counters    []threadCounters
	totals      []threadCounters
	samples     [][]EventSample // per-thread event streams, window-ordered
	nSamples    int
	eventsInBuf int
	windowStart int64

	// Stall cycles are attributed to pipeline sites (the loop a token was
	// stalled in). The hardware analogue is one counter per stage group; it
	// enables the source-linked hotspot report. Sites are interned once via
	// SiteID so the per-cycle hot path increments a slice slot instead of
	// hashing a string into a map.
	siteNames  []string
	siteIDs    map[string]int
	siteStalls []int64

	// Stats.
	FlushedBytes int64
	Flushes      int64
}

// New creates a profiling unit for nThreads hardware threads. flush may be
// nil (no memory-traffic modeling).
func New(cfg Config, nThreads int, flush FlushFunc) *Unit {
	u := &Unit{}
	u.Reset(cfg, nThreads, flush)
	return u
}

// recycle returns s truncated to n zeroed elements, reusing its backing
// array when the capacity allows.
func recycle[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// Reset reinitializes the unit in place for a new run, reusing the
// per-thread backing arrays (and the per-thread run/sample streams'
// capacity) instead of reallocating them. It leaves the unit exactly as
// New would: the simulator pools units across design points in sweeps so
// per-run setup is reset-not-reallocate.
func (u *Unit) Reset(cfg Config, nThreads int, flush FlushFunc) {
	if cfg.SamplePeriod <= 0 {
		cfg.SamplePeriod = 1024
	}
	if cfg.StateBufferLines <= 0 {
		cfg.StateBufferLines = 64
	}
	if cfg.EventBufferLines <= 0 {
		cfg.EventBufferLines = 64
	}
	u.cfg = cfg
	u.nThreads = nThreads
	u.flush = flush
	u.cur = recycle(u.cur, nThreads)
	u.openStart = recycle(u.openStart, nThreads)
	u.counters = recycle(u.counters, nThreads)
	u.totals = recycle(u.totals, nThreads)
	if cap(u.runs) < nThreads {
		u.runs = make([][]StateRun, nThreads)
	} else {
		u.runs = u.runs[:nThreads]
		for t := range u.runs {
			u.runs[t] = u.runs[t][:0]
		}
	}
	if cap(u.samples) < nThreads {
		u.samples = make([][]EventSample, nThreads)
	} else {
		u.samples = u.samples[:nThreads]
		for t := range u.samples {
			u.samples[t] = u.samples[t][:0]
		}
	}
	u.statesInBuf = 0
	u.nSamples = 0
	u.eventsInBuf = 0
	u.windowStart = 0
	u.siteNames = u.siteNames[:0]
	u.siteStalls = u.siteStalls[:0]
	clear(u.siteIDs)
	u.FlushedBytes = 0
	u.Flushes = 0
}

// Config returns the active configuration.
func (u *Unit) Config() Config { return u.cfg }

// NumThreads returns the monitored thread count.
func (u *Unit) NumThreads() int { return u.nThreads }

// StateRecordBits is the width of one state record: 2 bits per thread plus
// a 32-bit cycle count.
func (u *Unit) StateRecordBits() int { return 2*u.nThreads + 32 }

// EventRecordBits is the width of one event sample record: five 32-bit
// counters, a 32-bit window stamp and an 8-bit thread id, rounded to bytes.
func (u *Unit) EventRecordBits() int { return 5*32 + 32 + 8 }

// stateRecordsPerBuffer returns how many records fit the state buffer.
func (u *Unit) stateRecordsPerBuffer() int {
	per := (u.cfg.StateBufferLines * 512) / u.StateRecordBits()
	if per < 1 {
		per = 1
	}
	return per
}

func (u *Unit) eventRecordsPerBuffer() int {
	per := (u.cfg.EventBufferLines * 512) / u.EventRecordBits()
	if per < 1 {
		per = 1
	}
	return per
}

// SetState records a state change of one thread. Per the paper, the
// hardware writes a full-width record (the states of all threads) whenever
// any one changes; the buffer/flush accounting below models exactly that.
// The host-side storage, however, is a per-thread run-length stream: one
// closed run per actual transition of that thread.
func (u *Unit) SetState(cycle int64, thread int, st ThreadState) {
	if !u.cfg.Enabled {
		return
	}
	if u.cur[thread] == st {
		return
	}
	if cycle > u.openStart[thread] {
		u.closeRun(thread, cycle)
	}
	u.cur[thread] = st
	u.statesInBuf++
	if u.statesInBuf >= u.stateRecordsPerBuffer() {
		u.flushStates(cycle)
	}
}

// closeRun ends thread's open run at cycle, coalescing with the previous
// run when a same-cycle transition bounced through an intermediate state
// and landed back where it started.
func (u *Unit) closeRun(thread int, cycle int64) {
	rs := u.runs[thread]
	st := u.cur[thread]
	if n := len(rs); n > 0 && rs[n-1].State == st && rs[n-1].End == u.openStart[thread] {
		rs[n-1].End = cycle
	} else {
		rs = append(rs, StateRun{Begin: u.openStart[thread], End: cycle, State: st})
	}
	u.runs[thread] = rs
	u.openStart[thread] = cycle
}

// StateRuns returns thread's closed state runs, begin-sorted and coalesced.
// The slice is borrowed from the unit: it stays valid until the next
// SetState call for that thread. The run the thread is currently in is not
// included; close it with OpenStateRun.
func (u *Unit) StateRuns(thread int) []StateRun { return u.runs[thread] }

// OpenStateRun returns thread's trailing open run closed at end, or false
// when it would be empty (end is not past the run's begin). Note the open
// run's state can equal the last closed run's state when a same-cycle
// transition bounced back; stream consumers coalesce on the fly.
func (u *Unit) OpenStateRun(thread int, end int64) (StateRun, bool) {
	if end <= u.openStart[thread] {
		return StateRun{}, false
	}
	return StateRun{Begin: u.openStart[thread], End: end, State: u.cur[thread]}, true
}

// ThreadSamples returns thread's event-sample stream, ordered by window
// end. The slice is borrowed from the unit.
func (u *Unit) ThreadSamples(thread int) []EventSample { return u.samples[thread] }

// NumSamples returns the total event-sample count across threads.
func (u *Unit) NumSamples() int { return u.nSamples }

// CurrentState returns a thread's current state.
func (u *Unit) CurrentState(thread int) ThreadState { return u.cur[thread] }

// AddStalls accumulates stall cycles for a thread.
func (u *Unit) AddStalls(thread int, n int64) {
	u.AddStallsAt(thread, "", n)
}

// AddStallsAt accumulates stall cycles for a thread and attributes them to
// a pipeline site (a loop's name, carrying its source position). Empty
// sites count only toward the per-thread totals. Hot paths should intern
// the site once with SiteID and use AddStallsSite instead.
func (u *Unit) AddStallsAt(thread int, site string, n int64) {
	if !u.cfg.Enabled || n == 0 {
		return
	}
	id := -1
	if site != "" {
		id = u.SiteID(site)
	}
	u.AddStallsSite(thread, id, n)
}

// SiteID interns a pipeline site name and returns its counter index for
// AddStallsSite. Safe to call repeatedly with the same name.
func (u *Unit) SiteID(site string) int {
	if id, ok := u.siteIDs[site]; ok {
		return id
	}
	if u.siteIDs == nil {
		u.siteIDs = make(map[string]int)
	}
	id := len(u.siteNames)
	u.siteIDs[site] = id
	u.siteNames = append(u.siteNames, site)
	u.siteStalls = append(u.siteStalls, 0)
	return id
}

// AddStallsSite accumulates stall cycles for a thread against an interned
// site id (from SiteID); id < 0 counts only toward the per-thread totals.
func (u *Unit) AddStallsSite(thread, id int, n int64) {
	if !u.cfg.Enabled || n == 0 {
		return
	}
	u.counters[thread].stalls += n
	u.totals[thread].stalls += n
	if id >= 0 {
		u.siteStalls[id] += n
	}
}

// StallsBySite returns stall cycles per pipeline site (loop), the data
// behind the hotspot report.
func (u *Unit) StallsBySite() map[string]int64 {
	out := make(map[string]int64, len(u.siteNames))
	for id, name := range u.siteNames {
		if n := u.siteStalls[id]; n != 0 {
			out[name] = n
		}
	}
	return out
}

// AddCompute accumulates arithmetic activity for a thread (integer ops and
// FP lane-operations).
func (u *Unit) AddCompute(thread int, intOps, fpOps int64) {
	if !u.cfg.Enabled {
		return
	}
	u.counters[thread].intOps += intOps
	u.counters[thread].fpOps += fpOps
	u.totals[thread].intOps += intOps
	u.totals[thread].fpOps += fpOps
}

// AddMem accumulates memory traffic for a thread. Traffic from non-thread
// engines (thread < 0, e.g. this unit's own flushes) is ignored, as the
// hardware counters snoop only the compute-unit ports.
func (u *Unit) AddMem(thread int, bytes int, write bool) {
	if !u.cfg.Enabled || thread < 0 {
		return
	}
	if write {
		u.counters[thread].writeBytes += int64(bytes)
		u.totals[thread].writeBytes += int64(bytes)
	} else {
		u.counters[thread].readBytes += int64(bytes)
		u.totals[thread].readBytes += int64(bytes)
	}
}

// Tick advances the unit to the given cycle, closing sample windows as
// crossed. Ticking every cycle is correct but wasteful: Tick only acts at
// window boundaries, so callers may batch and call it once per crossing of
// NextBoundary().
func (u *Unit) Tick(cycle int64) {
	if !u.cfg.Enabled {
		return
	}
	for cycle >= u.windowStart+u.cfg.SamplePeriod {
		u.closeWindow(u.windowStart + u.cfg.SamplePeriod)
	}
}

// NextBoundary returns the first cycle at which Tick would close a sample
// window, or math.MaxInt64 for a disabled unit. The value advances after
// each Tick that closes a window.
func (u *Unit) NextBoundary() int64 {
	if !u.cfg.Enabled {
		return math.MaxInt64
	}
	return u.windowStart + u.cfg.SamplePeriod
}

func (u *Unit) closeWindow(end int64) {
	for t := 0; t < u.nThreads; t++ {
		c := &u.counters[t]
		if c.stalls == 0 && c.intOps == 0 && c.fpOps == 0 && c.readBytes == 0 && c.writeBytes == 0 {
			continue
		}
		u.samples[t] = append(u.samples[t], EventSample{
			Start: u.windowStart, End: end, Thread: t,
			Stalls: c.stalls, IntOps: c.intOps, FpOps: c.fpOps,
			ReadBytes: c.readBytes, WriteBytes: c.writeBytes,
		})
		u.nSamples++
		*c = threadCounters{}
		u.eventsInBuf++
	}
	if u.eventsInBuf >= u.eventRecordsPerBuffer() {
		u.flushEvents(end)
	}
	u.windowStart = end
}

func (u *Unit) flushStates(cycle int64) {
	if u.statesInBuf == 0 {
		return
	}
	bits := u.statesInBuf * u.StateRecordBits()
	lines := (bits + 511) / 512
	u.emitFlush(cycle, lines*64)
	u.statesInBuf = 0
}

func (u *Unit) flushEvents(cycle int64) {
	if u.eventsInBuf == 0 {
		return
	}
	bits := u.eventsInBuf * u.EventRecordBits()
	lines := (bits + 511) / 512
	u.emitFlush(cycle, lines*64)
	u.eventsInBuf = 0
}

func (u *Unit) emitFlush(cycle int64, bytes int) {
	u.FlushedBytes += int64(bytes)
	u.Flushes++
	if u.flush != nil {
		u.flush(cycle, bytes)
	}
}

// Finalize closes the last sampling window and flushes all buffers. Call
// once when the accelerator goes idle.
func (u *Unit) Finalize(cycle int64) {
	if !u.cfg.Enabled {
		return
	}
	u.Tick(cycle)
	if cycle > u.windowStart {
		u.closeWindow(cycle)
	}
	u.flushStates(cycle)
	u.flushEvents(cycle)
}

// StateRecords materializes the full-width snapshot records the hardware
// would have written, reconstructed from the per-thread run streams (host
// readback compatibility view). Changes of different threads at the same
// cycle are ordered by thread index. Prefer StateRuns/OpenStateRun on hot
// paths: this allocates one snapshot per state change.
func (u *Unit) StateRecords() []StateRecord {
	type changeEvt struct {
		cycle  int64
		thread int
		st     ThreadState
	}
	var evts []changeEvt
	for t := 0; t < u.nThreads; t++ {
		prev := StateIdle
		for _, r := range u.runs[t] {
			if r.State != prev {
				evts = append(evts, changeEvt{r.Begin, t, r.State})
			}
			prev = r.State
		}
		if u.cur[t] != prev {
			evts = append(evts, changeEvt{u.openStart[t], t, u.cur[t]})
		}
	}
	sort.SliceStable(evts, func(i, j int) bool {
		if evts[i].cycle != evts[j].cycle {
			return evts[i].cycle < evts[j].cycle
		}
		return evts[i].thread < evts[j].thread
	})
	states := make([]ThreadState, u.nThreads)
	arena := make([]ThreadState, 0, len(evts)*u.nThreads)
	out := make([]StateRecord, 0, len(evts))
	for _, e := range evts {
		states[e.thread] = e.st
		n0 := len(arena)
		arena = append(arena, states...)
		out = append(out, StateRecord{Cycle: e.cycle, States: arena[n0:len(arena):len(arena)]})
	}
	return out
}

// EventSamples materializes the recorded event windows in hardware write
// order (window-major, thread-minor), merged from the per-thread streams
// (host readback compatibility view). Prefer ThreadSamples on hot paths.
func (u *Unit) EventSamples() []EventSample {
	out := make([]EventSample, 0, u.nSamples)
	idx := make([]int, u.nThreads)
	for len(out) < u.nSamples {
		best := -1
		for t := 0; t < u.nThreads; t++ {
			if idx[t] >= len(u.samples[t]) {
				continue
			}
			if best < 0 || u.samples[t][idx[t]].End < u.samples[best][idx[best]].End {
				best = t
			}
		}
		out = append(out, u.samples[best][idx[best]])
		idx[best]++
	}
	return out
}

// TotalsFor returns lifetime counter totals of one thread.
func (u *Unit) TotalsFor(thread int) (stalls, intOps, fpOps, readBytes, writeBytes int64) {
	t := u.totals[thread]
	return t.stalls, t.intOps, t.fpOps, t.readBytes, t.writeBytes
}

// StateDurations integrates the state records from cycle 0 to end and
// returns, per thread, the cycles spent in each of the four states. It is
// the host-side analysis the Paraver state view visualizes.
func StateDurations(records []StateRecord, nThreads int, end int64) [][4]int64 {
	out := make([][4]int64, nThreads)
	prevCycle := int64(0)
	prevStates := make([]ThreadState, nThreads) // all idle initially
	account := func(upTo int64) {
		d := upTo - prevCycle
		if d <= 0 {
			return
		}
		for t := 0; t < nThreads; t++ {
			out[t][prevStates[t]] += d
		}
	}
	for _, r := range records {
		if r.Cycle > prevCycle {
			account(r.Cycle)
			prevCycle = r.Cycle
		}
		copy(prevStates, r.States)
	}
	account(end)
	return out
}
