package profile

import "testing"

// Reset must leave a used unit indistinguishable from a freshly allocated
// one, so the simulator can pool units across design points.
func TestResetMatchesFresh(t *testing.T) {
	cfg := DefaultConfig()
	u := New(cfg, 4, nil)
	// Dirty every piece of state a run touches.
	u.SetState(10, 0, StateRunning)
	u.SetState(20, 1, StateCritical)
	u.AddCompute(0, 100, 200)
	u.AddMem(2, 64, false)
	id := u.SiteID("for@1:1")
	u.AddStallsSite(3, id, 7)
	u.Tick(1024)
	u.Finalize(2048)

	u.Reset(cfg, 2, nil)
	fresh := New(cfg, 2, nil)

	if u.NumThreads() != fresh.NumThreads() {
		t.Fatalf("NumThreads = %d, want %d", u.NumThreads(), fresh.NumThreads())
	}
	for th := 0; th < 2; th++ {
		if got, want := u.CurrentState(th), fresh.CurrentState(th); got != want {
			t.Errorf("thread %d state = %v, want %v", th, got, want)
		}
		if len(u.StateRuns(th)) != 0 {
			t.Errorf("thread %d has %d stale state runs", th, len(u.StateRuns(th)))
		}
		if len(u.ThreadSamples(th)) != 0 {
			t.Errorf("thread %d has %d stale samples", th, len(u.ThreadSamples(th)))
		}
		s, i, f, rb, wb := u.TotalsFor(th)
		if s|i|f|rb|wb != 0 {
			t.Errorf("thread %d totals not zeroed: %d %d %d %d %d", th, s, i, f, rb, wb)
		}
	}
	if n := len(u.StallsBySite()); n != 0 {
		t.Errorf("stale site stalls: %d entries", n)
	}
	if u.NumSamples() != 0 || u.FlushedBytes != 0 || u.Flushes != 0 {
		t.Errorf("stale counters: samples=%d flushed=%d flushes=%d",
			u.NumSamples(), u.FlushedBytes, u.Flushes)
	}
	// Reused site interning must restart from id 0.
	if got := u.SiteID("for@9:9"); got != 0 {
		t.Errorf("first SiteID after Reset = %d, want 0", got)
	}
}

// Resetting to the same shape must not allocate: that is the point of
// pooling units instead of calling New per design point.
func TestResetDoesNotAllocate(t *testing.T) {
	u := New(DefaultConfig(), 8, nil)
	u.SetState(5, 3, StateSpinning)
	u.SiteID("for@2:2")
	allocs := testing.AllocsPerRun(100, func() {
		u.Reset(DefaultConfig(), 8, nil)
	})
	if allocs != 0 {
		t.Errorf("Reset allocated %.1f objects per run, want 0", allocs)
	}
}
