// Package parallel provides a small bounded worker pool used to fan out
// independent design-point simulations (experiment sweeps, cluster FPGAs,
// parameter sweeps) across OS threads.
//
// The pool is deliberately deterministic from the caller's point of view:
// results are collected by index, every index runs even if an earlier one
// fails, and the error returned is always the one with the lowest index.
// That makes workers=1 and workers=N observationally identical for any
// fn whose work items are independent, which the experiment determinism
// regression test relies on.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

var defaultWorkers atomic.Int64

// DefaultWorkers returns the pool width used when a caller passes
// workers <= 0. It defaults to GOMAXPROCS and can be overridden once at
// startup via SetDefaultWorkers (the -j flag on the CLIs).
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetDefaultWorkers overrides the default pool width. n <= 0 restores the
// GOMAXPROCS default.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Resolve clamps an explicit worker count: <= 0 means DefaultWorkers().
func Resolve(workers int) int {
	if workers <= 0 {
		return DefaultWorkers()
	}
	return workers
}

// ForEach runs fn(0..n-1) on a pool of at most workers goroutines and
// returns the error produced by the lowest failing index, or nil. All n
// indices run regardless of failures, so the returned error does not
// depend on scheduling. workers <= 0 uses DefaultWorkers(); workers == 1
// runs inline on the calling goroutine.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Do runs the given functions concurrently on a pool of DefaultWorkers()
// goroutines and returns the first (lowest-index) error.
func Do(fns ...func() error) error {
	return ForEach(0, len(fns), func(i int) error { return fns[i]() })
}
