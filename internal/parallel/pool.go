package parallel

import (
	"errors"
	"sync"
)

// ErrPoolClosed is returned by Submit after Close has been called.
var ErrPoolClosed = errors.New("parallel: pool closed")

// ErrQueueFull is returned by TrySubmit when the queue bound is reached;
// it is the pool's backpressure signal (the daemon maps it to 429).
var ErrQueueFull = errors.New("parallel: job queue full")

// Pool is a long-lived bounded worker pool for a server: jobs are
// submitted one at a time, queue until a worker frees up, and run on at
// most `workers` goroutines. Unlike ForEach — which fans a fixed batch
// out and joins it — a Pool outlives any one request, exposes its queue
// depth and in-flight count for metrics, and drains gracefully on Close.
type Pool struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []func()
	inFlight int
	closed   bool
	wg       sync.WaitGroup
}

// NewPool starts a pool with the given number of worker goroutines
// (workers <= 0 uses DefaultWorkers()).
func NewPool(workers int) *Pool {
	workers = Resolve(workers)
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		fn := p.queue[0]
		p.queue[0] = nil
		p.queue = p.queue[1:]
		p.inFlight++
		p.mu.Unlock()

		fn()

		p.mu.Lock()
		p.inFlight--
		if p.closed {
			p.cond.Broadcast()
		}
		p.mu.Unlock()
	}
}

// Submit enqueues a job. It never blocks: the job waits in the queue
// until a worker is free. Returns ErrPoolClosed after Close.
func (p *Pool) Submit(fn func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	p.queue = append(p.queue, fn)
	p.cond.Signal()
	return nil
}

// TrySubmit enqueues a job unless the queue already holds maxQueue
// waiting jobs (maxQueue <= 0 means unbounded, like Submit). The bound
// is checked under the queue lock, so concurrent TrySubmits cannot
// overshoot it.
func (p *Pool) TrySubmit(fn func(), maxQueue int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	if maxQueue > 0 && len(p.queue) >= maxQueue {
		return ErrQueueFull
	}
	p.queue = append(p.queue, fn)
	p.cond.Signal()
	return nil
}

// QueueDepth reports how many jobs are waiting for a worker.
func (p *Pool) QueueDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// InFlight reports how many jobs are currently executing.
func (p *Pool) InFlight() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inFlight
}

// Close stops accepting new jobs, lets the queued and in-flight ones
// finish, and waits for every worker to exit. Callers that want queued
// jobs to finish fast rather than run fully should cancel the contexts
// those jobs observe before calling Close.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}
