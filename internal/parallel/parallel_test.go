package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 100
		hit := make([]atomic.Int32, n)
		if err := ForEach(workers, n, func(i int) error {
			hit[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		for i := range hit {
			if got := hit[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 2, 16} {
		err := ForEach(workers, 50, func(i int) error {
			switch i {
			case 7:
				return errLow
			case 31:
				return errHigh
			}
			return nil
		})
		if err != errLow {
			t.Fatalf("workers=%d: got %v, want lowest-index error", workers, err)
		}
	}
}

func TestForEachRunsLaterIndicesAfterError(t *testing.T) {
	var ran atomic.Int32
	err := ForEach(4, 20, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got != 20 {
		t.Fatalf("ran %d of 20 indices; pool must not cancel on error", got)
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	err := ForEach(workers, 200, func(i int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(4, 0, func(i int) error { t.Fatal("must not run"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestDo(t *testing.T) {
	var a, b atomic.Bool
	err := Do(
		func() error { a.Store(true); return nil },
		func() error { b.Store(true); return errors.New("second") },
	)
	if err == nil || err.Error() != "second" {
		t.Fatalf("got %v", err)
	}
	if !a.Load() || !b.Load() {
		t.Fatal("not all funcs ran")
	}
}

func TestDefaultWorkersOverride(t *testing.T) {
	defer SetDefaultWorkers(0)
	SetDefaultWorkers(5)
	if got := DefaultWorkers(); got != 5 {
		t.Fatalf("DefaultWorkers = %d, want 5", got)
	}
	if got := Resolve(0); got != 5 {
		t.Fatalf("Resolve(0) = %d, want 5", got)
	}
	if got := Resolve(2); got != 2 {
		t.Fatalf("Resolve(2) = %d, want 2", got)
	}
	SetDefaultWorkers(0)
	if got := DefaultWorkers(); got <= 0 {
		t.Fatalf("DefaultWorkers = %d after reset", got)
	}
}
