package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEverySubmittedJob(t *testing.T) {
	p := NewPool(4)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := p.Submit(func() {
			defer wg.Done()
			ran.Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if ran.Load() != 100 {
		t.Fatalf("ran %d of 100 jobs", ran.Load())
	}
	p.Close()
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	defer p.Close()
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		if err := p.Submit(func() {
			defer wg.Done()
			n := cur.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent jobs, pool bound is %d", got, workers)
	}
}

func TestPoolCloseDrainsQueue(t *testing.T) {
	p := NewPool(1)
	var ran atomic.Int64
	block := make(chan struct{})
	if err := p.Submit(func() { <-block; ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := p.Submit(func() { ran.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	if d := p.QueueDepth(); d == 0 {
		t.Error("queue depth is 0 while worker is blocked")
	}
	close(block)
	p.Close()
	if ran.Load() != 6 {
		t.Fatalf("Close drained %d of 6 jobs", ran.Load())
	}
	if err := p.Submit(func() {}); err != ErrPoolClosed {
		t.Fatalf("Submit after Close = %v, want ErrPoolClosed", err)
	}
	if p.InFlight() != 0 || p.QueueDepth() != 0 {
		t.Errorf("closed pool reports inFlight=%d queue=%d", p.InFlight(), p.QueueDepth())
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close()
}
