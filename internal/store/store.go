// Package store implements the daemon's persistent content-addressed
// artifact store: the on-disk promotion of core.Cache. Artifacts are
// small named-file bundles (a finished run's trace.prv/.prv.gz/.pcf/.row
// plus its summary document, or a compile report) keyed by the same
// hex SHA-256 digests core.Key produces, so a repeat request costs one
// disk read instead of a recompilation or a simulation — and, unlike the
// in-memory compile cache, the store survives daemon restarts.
//
// The store is LRU-bounded by total bytes: puts that push it past the
// budget evict least-recently-used entries (counted, exposed via Stats).
// Recency is persisted as the entry directory's mtime, so the LRU order
// itself survives restarts. Puts are atomic (write to a temp directory,
// then rename), so a crash mid-put never leaves a half-readable entry.
//
// The package also provides Coalescer, the time/size-windowed extension
// of core.Cache's single-flight: N concurrent identical requests share
// one execution and one result.
package store

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// DefaultMaxBytes is the store budget when Open is given maxBytes <= 0.
const DefaultMaxBytes = 1 << 30 // 1 GiB

// Store is a persistent, digest-keyed, LRU-bounded artifact store.
type Store struct {
	root     string
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*entry // digest -> entry
	lru     *list.List        // front = most recently used; values are *entry
	bytes   int64

	hits, misses, puts, evictions int64
}

type entry struct {
	digest string
	bytes  int64
	elem   *list.Element
}

// Entry is a read handle on one stored artifact. Reads are lazy: a
// concurrent eviction can remove the files underneath, in which case
// ReadFile reports the miss and the caller falls back to recomputing.
type Entry struct {
	Digest string
	dir    string
}

// Stats is a point-in-time snapshot of the store counters.
type Stats struct {
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts"`
	Evictions int64 `json:"evictions"`
}

// Open opens (or creates) a store rooted at dir, bounded to maxBytes
// (<= 0 means DefaultMaxBytes). Existing entries are scanned back into
// the LRU index ordered by their directory mtimes, oldest first, and the
// byte budget is enforced immediately.
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		root:     dir,
		maxBytes: maxBytes,
		entries:  map[string]*entry{},
		lru:      list.New(),
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	victims := s.evictLocked(nil)
	s.mu.Unlock()
	s.removeDirs(victims)
	return s, nil
}

// scan rebuilds the index from disk. Layout: <root>/<digest[:2]>/<digest>/.
// Leftover temp directories from interrupted puts are removed.
func (s *Store) scan() error {
	type found struct {
		digest string
		bytes  int64
		mtime  time.Time
	}
	var all []found
	shards, err := os.ReadDir(s.root)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		if len(sh.Name()) != 2 {
			// Interrupted put (tmp-*) or foreign debris: clean temp dirs,
			// leave anything else alone.
			if len(sh.Name()) > 4 && sh.Name()[:4] == "tmp-" {
				os.RemoveAll(filepath.Join(s.root, sh.Name()))
			}
			continue
		}
		dirs, err := os.ReadDir(filepath.Join(s.root, sh.Name()))
		if err != nil {
			continue
		}
		for _, d := range dirs {
			if !d.IsDir() {
				continue
			}
			dir := filepath.Join(s.root, sh.Name(), d.Name())
			info, err := d.Info()
			if err != nil {
				continue
			}
			all = append(all, found{digest: d.Name(), bytes: dirBytes(dir), mtime: info.ModTime()})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].mtime.Before(all[j].mtime) })
	for _, f := range all {
		e := &entry{digest: f.digest, bytes: f.bytes}
		e.elem = s.lru.PushFront(e) // later mtime ends up nearer the front
		s.entries[f.digest] = e
		s.bytes += f.bytes
	}
	return nil
}

func dirBytes(dir string) int64 {
	var n int64
	files, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, f := range files {
		if info, err := f.Info(); err == nil {
			n += info.Size()
		}
	}
	return n
}

func (s *Store) dirFor(digest string) string {
	return filepath.Join(s.root, digest[:2], digest)
}

// Get looks the digest up, bumping its recency (in memory and on disk,
// via the directory mtime) on a hit.
func (s *Store) Get(digest string) (Entry, bool) {
	if len(digest) < 3 {
		return Entry{}, false
	}
	s.mu.Lock()
	e, ok := s.entries[digest]
	if !ok {
		s.misses++
		s.mu.Unlock()
		return Entry{}, false
	}
	s.hits++
	s.lru.MoveToFront(e.elem)
	s.mu.Unlock()
	dir := s.dirFor(digest)
	now := time.Now()
	_ = os.Chtimes(dir, now, now)
	return Entry{Digest: digest, dir: dir}, true
}

// Handle returns a read handle on digest without touching the hit/miss
// counters or the LRU recency — for a writer re-opening an entry it
// just Put (serving it from disk instead of pinning bytes in memory).
func (s *Store) Handle(digest string) (Entry, bool) {
	if len(digest) < 3 {
		return Entry{}, false
	}
	s.mu.Lock()
	_, ok := s.entries[digest]
	s.mu.Unlock()
	if !ok {
		return Entry{}, false
	}
	return Entry{Digest: digest, dir: s.dirFor(digest)}, true
}

// Put stores the named files under the digest atomically. Re-putting an
// existing digest only refreshes its recency. Eviction keeps the store
// within budget; the entry being put is never its own victim.
func (s *Store) Put(digest string, files map[string][]byte) error {
	if len(digest) < 3 {
		return fmt.Errorf("store: digest %q too short", digest)
	}
	s.mu.Lock()
	if e, ok := s.entries[digest]; ok {
		s.lru.MoveToFront(e.elem)
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	tmp, err := os.MkdirTemp(s.root, "tmp-")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var total int64
	for name, data := range files {
		if filepath.Base(name) != name {
			os.RemoveAll(tmp)
			return fmt.Errorf("store: bad artifact file name %q", name)
		}
		if err := os.WriteFile(filepath.Join(tmp, name), data, 0o644); err != nil {
			os.RemoveAll(tmp)
			return fmt.Errorf("store: %w", err)
		}
		total += int64(len(data))
	}
	dir := s.dirFor(digest)
	if err := os.MkdirAll(filepath.Dir(dir), 0o755); err != nil {
		os.RemoveAll(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, dir); err != nil {
		os.RemoveAll(tmp)
		// A concurrent Put of the same digest can win the rename race;
		// treat an existing destination as success.
		if _, statErr := os.Stat(dir); statErr == nil {
			s.noteExisting(digest, total)
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	s.noteExisting(digest, total)
	return nil
}

// noteExisting records a freshly landed on-disk entry in the index and
// enforces the byte budget.
func (s *Store) noteExisting(digest string, bytes int64) {
	s.mu.Lock()
	if e, ok := s.entries[digest]; ok {
		s.lru.MoveToFront(e.elem)
		s.mu.Unlock()
		return
	}
	e := &entry{digest: digest, bytes: bytes}
	e.elem = s.lru.PushFront(e)
	s.entries[digest] = e
	s.bytes += bytes
	s.puts++
	victims := s.evictLocked(e)
	s.mu.Unlock()
	s.removeDirs(victims)
}

// evictLocked drops least-recently-used entries from the index until the
// store fits the budget and returns their directories for removal (done
// by the caller, after unlocking). keep, if non-nil, is exempt: the
// entry just added is never its own victim, even when it alone is over
// budget.
func (s *Store) evictLocked(keep *entry) []string {
	var victims []string
	for s.bytes > s.maxBytes && s.lru.Len() > 0 {
		back := s.lru.Back()
		victim := back.Value.(*entry)
		if victim == keep {
			if back.Prev() == nil {
				break
			}
			victim = back.Prev().Value.(*entry)
		}
		s.lru.Remove(victim.elem)
		delete(s.entries, victim.digest)
		s.bytes -= victim.bytes
		s.evictions++
		victims = append(victims, s.dirFor(victim.digest))
	}
	return victims
}

func (s *Store) removeDirs(dirs []string) {
	for _, dir := range dirs {
		os.RemoveAll(dir)
		os.Remove(filepath.Dir(dir)) // drop the shard dir if now empty
	}
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Bytes:     s.bytes,
		MaxBytes:  s.maxBytes,
		Entries:   len(s.entries),
		Hits:      s.hits,
		Misses:    s.misses,
		Puts:      s.puts,
		Evictions: s.evictions,
	}
}

// ReadFile reads one named file of the artifact. A concurrent eviction
// surfaces as the underlying not-exist error.
func (e Entry) ReadFile(name string) ([]byte, error) {
	if filepath.Base(name) != name {
		return nil, fmt.Errorf("store: bad artifact file name %q", name)
	}
	return os.ReadFile(filepath.Join(e.dir, name))
}
