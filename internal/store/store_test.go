package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func digestFor(i int) string {
	return fmt.Sprintf("%02x%060x", i%256, i)
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	files := map[string][]byte{
		"trace.prv":    []byte("prv-bytes"),
		"summary.json": []byte(`{"ok":true}`),
	}
	d := digestFor(1)
	if err := s.Put(d, files); err != nil {
		t.Fatal(err)
	}
	ent, ok := s.Get(d)
	if !ok {
		t.Fatal("just-put digest missed")
	}
	for name, want := range files {
		got, err := ent.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: got %q, want %q", name, got, want)
		}
	}
	if _, ok := s.Get(digestFor(2)); ok {
		t.Error("unknown digest hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Puts != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Bytes != int64(len(files["trace.prv"])+len(files["summary.json"])) {
		t.Errorf("bytes = %d", st.Bytes)
	}
	if _, err := ent.ReadFile("../escape"); err == nil {
		t.Error("path traversal in ReadFile not rejected")
	}
	if err := s.Put(digestFor(3), map[string][]byte{"a/b": nil}); err == nil {
		t.Error("path traversal in Put not rejected")
	}
}

func TestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := digestFor(7)
	if err := s.Put(d, map[string][]byte{"x": []byte("hello")}); err != nil {
		t.Fatal(err)
	}

	// A second Open on the same directory must see the entry.
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	ent, ok := s2.Get(d)
	if !ok {
		t.Fatal("entry lost across reopen")
	}
	got, err := ent.ReadFile("x")
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if st := s2.Stats(); st.Entries != 1 || st.Bytes != 5 {
		t.Errorf("reopened stats = %+v", st)
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 30)
	if err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte("x"), 10)
	for i := 0; i < 3; i++ {
		if err := s.Put(digestFor(i), map[string][]byte{"b": blob}); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so the on-disk LRU order is unambiguous.
		time.Sleep(5 * time.Millisecond)
	}
	// Touch 0 so 1 becomes the LRU victim.
	if _, ok := s.Get(digestFor(0)); !ok {
		t.Fatal("entry 0 missing")
	}
	if err := s.Put(digestFor(3), map[string][]byte{"b": blob}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(digestFor(1)); ok {
		t.Error("LRU victim 1 still present")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := s.Get(digestFor(i)); !ok {
			t.Errorf("entry %d evicted, want kept", i)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.Bytes != 30 {
		t.Errorf("stats = %+v", st)
	}
	// The evicted entry must be gone from disk too, not just the index.
	if _, err := os.Stat(s.dirFor(digestFor(1))); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("victim dir still on disk: %v", err)
	}
}

func TestReopenEnforcesBudgetOldestFirst(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, DefaultMaxBytes)
	if err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte("y"), 10)
	for i := 0; i < 4; i++ {
		if err := s.Put(digestFor(i), map[string][]byte{"b": blob}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Reopen with a budget for only two entries: the two oldest by mtime
	// must be evicted at Open.
	s2, err := Open(dir, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1} {
		if _, ok := s2.Get(digestFor(i)); ok {
			t.Errorf("old entry %d survived reopen under budget", i)
		}
	}
	for _, i := range []int{2, 3} {
		if _, ok := s2.Get(digestFor(i)); !ok {
			t.Errorf("recent entry %d evicted at reopen", i)
		}
	}
	if st := s2.Stats(); st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
}

func TestOversizeEntryIsKept(t *testing.T) {
	s, err := Open(t.TempDir(), 10)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("z"), 100)
	if err := s.Put(digestFor(1), map[string][]byte{"b": big}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(digestFor(1)); !ok {
		t.Error("entry larger than the whole budget must still be stored")
	}
}

func TestPutExistingRefreshesRecency(t *testing.T) {
	s, err := Open(t.TempDir(), 20)
	if err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte("x"), 10)
	for i := 0; i < 2; i++ {
		if err := s.Put(digestFor(i), map[string][]byte{"b": blob}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(digestFor(0), map[string][]byte{"b": blob}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(digestFor(2), map[string][]byte{"b": blob}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(digestFor(1)); ok {
		t.Error("re-put entry 0 should have made 1 the victim")
	}
	if _, ok := s.Get(digestFor(0)); !ok {
		t.Error("re-put entry 0 evicted")
	}
}

func TestCoalescerSingleExecution(t *testing.T) {
	var c Coalescer
	var execs atomic.Int64
	var wg sync.WaitGroup
	release := make(chan struct{})
	const n = 16
	results := make([]any, n)
	sharedCount := atomic.Int64{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := c.Do(context.Background(), "k", func() (any, error) {
				execs.Add(1)
				<-release
				return "result", nil
			})
			if err != nil {
				t.Error(err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = v
		}(i)
	}
	// Let everyone join before the leader finishes.
	for c.Stats().Coalesced < n-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Errorf("fn executed %d times, want 1", got)
	}
	if sharedCount.Load() != n-1 {
		t.Errorf("shared = %d, want %d", sharedCount.Load(), n-1)
	}
	for i, v := range results {
		if v != "result" {
			t.Errorf("caller %d got %v", i, v)
		}
	}
}

func TestCoalescerWindowLingers(t *testing.T) {
	c := Coalescer{Window: time.Hour}
	v, shared, err := c.Do(context.Background(), "k", func() (any, error) { return 1, nil })
	if v != 1 || shared || err != nil {
		t.Fatalf("leader: %v %v %v", v, shared, err)
	}
	// Within the window the finished flight is still joinable: no re-run.
	v, shared, err = c.Do(context.Background(), "k", func() (any, error) {
		t.Fatal("re-executed inside window")
		return nil, nil
	})
	if v != 1 || !shared || err != nil {
		t.Fatalf("window join: %v %v %v", v, shared, err)
	}
}

func TestCoalescerErrorsDoNotLinger(t *testing.T) {
	c := Coalescer{Window: time.Hour}
	boom := errors.New("boom")
	if _, _, err := c.Do(context.Background(), "k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	ran := false
	if _, _, err := c.Do(context.Background(), "k", func() (any, error) { ran = true; return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("failed flight lingered; retry did not execute")
	}
}

func TestCoalescerSaturation(t *testing.T) {
	c := Coalescer{MaxWaiters: 2}
	f, leader, err := c.Join("k")
	if !leader || err != nil {
		t.Fatalf("leader join: %v %v", leader, err)
	}
	if _, l, err := c.Join("k"); l || err != nil {
		t.Fatalf("second join: %v %v", l, err)
	}
	if _, _, err := c.Join("k"); !errors.Is(err, ErrSaturated) {
		t.Fatalf("third join err = %v, want ErrSaturated", err)
	}
	if st := c.Stats(); st.Rejected != 1 || st.Coalesced != 1 {
		t.Errorf("stats = %+v", st)
	}
	f.Finish(nil, nil)
}

func TestCoalescerContextCancel(t *testing.T) {
	var c Coalescer
	f, leader, err := c.Join("k")
	if !leader || err != nil {
		t.Fatal("expected leadership")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g, l, err := c.Join("k")
	if l || err != nil {
		t.Fatal("expected follower")
	}
	if _, err := g.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Wait = %v", err)
	}
	f.Finish(nil, nil)
}

// TestCoalescerFinishedFlightIgnoresMaxWaiters: once a flight has
// finished, serving its lingering result is free, so the size window no
// longer applies — a hot digest must not 429 on joins that cost nothing.
func TestCoalescerFinishedFlightIgnoresMaxWaiters(t *testing.T) {
	c := Coalescer{Window: time.Hour, MaxWaiters: 2}
	f, leader, err := c.Join("k")
	if !leader || err != nil {
		t.Fatalf("leader join: %v %v", leader, err)
	}
	f.Finish(42, nil)
	for i := 0; i < 10; i++ {
		g, l, err := c.Join("k")
		if l || err != nil {
			t.Fatalf("post-finish join %d: leader=%v err=%v", i, l, err)
		}
		if v, err := g.Wait(context.Background()); v != 42 || err != nil {
			t.Fatalf("post-finish join %d: result %v %v", i, v, err)
		}
	}
	if st := c.Stats(); st.Rejected != 0 {
		t.Errorf("finished flight rejected %d joins", st.Rejected)
	}
}

// TestFlightDetach: detaching decrements the waiter count so the leader
// can tell whether anyone still wants the result, and frees a size-
// window slot for the next joiner.
func TestFlightDetach(t *testing.T) {
	c := Coalescer{MaxWaiters: 2}
	f, leader, err := c.Join("k")
	if !leader || err != nil {
		t.Fatalf("leader join: %v %v", leader, err)
	}
	if _, l, err := c.Join("k"); l || err != nil {
		t.Fatalf("follower join: %v %v", l, err)
	}
	if _, _, err := c.Join("k"); !errors.Is(err, ErrSaturated) {
		t.Fatalf("saturated join err = %v", err)
	}
	if left := f.Detach(); left != 1 {
		t.Fatalf("Detach = %d, want 1", left)
	}
	// The freed slot is joinable again.
	if _, l, err := c.Join("k"); l || err != nil {
		t.Fatalf("join after detach: %v %v", l, err)
	}
	if left := f.Detach(); left != 1 {
		t.Fatalf("second Detach = %d, want 1", left)
	}
	if left := f.Detach(); left != 0 {
		t.Fatalf("third Detach = %d, want 0", left)
	}
	if left := f.Detach(); left != 0 {
		t.Fatalf("Detach below zero = %d", left)
	}
	f.Finish(nil, nil)
}
