package store

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrSaturated is returned by Coalescer.Join when a flight already has
// MaxWaiters requests attached: the caller should shed load (the daemon
// maps it to 429 + Retry-After).
var ErrSaturated = errors.New("store: too many requests coalesced on one flight")

// Coalescer extends content-addressed single-flighting with a time and
// size window: concurrent joins of the same key share one leader's
// execution, a completed flight's result lingers for Window so
// immediately repeated keys still coalesce without re-executing, and at
// most MaxWaiters requests may attach to one flight (beyond that Join
// fails fast with ErrSaturated instead of queueing unbounded).
//
// Failed flights never linger: the error is shared with the requests
// already attached, then the key is forgotten so the next joiner retries.
//
// The split Join/Finish API (instead of a blocking Do) lets an async
// server attach a job to an in-flight execution and return immediately;
// Do wraps the pair for synchronous callers.
type Coalescer struct {
	// Window is how long a successful result stays joinable after the
	// flight finishes (0 = flights are dropped at completion).
	Window time.Duration
	// MaxWaiters caps how many requests may share one flight, the leader
	// included (0 = unlimited).
	MaxWaiters int

	mu        sync.Mutex
	flights   map[string]*Flight
	coalesced int64
	rejected  int64
}

// Flight is one in-flight (or Window-recent) execution of a key.
type Flight struct {
	c    *Coalescer
	key  string
	done chan struct{}
	val  any
	err  error

	waiters  int  // guarded by c.mu
	finished bool // guarded by c.mu
}

// CoalesceStats is a snapshot of the coalescer counters.
type CoalesceStats struct {
	InFlight  int   `json:"in_flight"`
	Coalesced int64 `json:"coalesced"`
	Rejected  int64 `json:"rejected"`
}

// Join attaches the caller to key's flight. leader reports whether the
// caller must execute the work and call Finish; otherwise the caller
// waits on the returned flight (Wait, or Done for async completion).
// ErrSaturated means the flight's size window is full.
func (c *Coalescer) Join(key string) (f *Flight, leader bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.flights == nil {
		c.flights = map[string]*Flight{}
	}
	if f, ok := c.flights[key]; ok {
		// A finished flight lingering in its Window is a free read: the
		// result is already published, so joining costs nothing and the
		// size window no longer applies (only executing flights queue
		// waiters).
		if f.finished {
			c.coalesced++
			return f, false, nil
		}
		if c.MaxWaiters > 0 && f.waiters >= c.MaxWaiters {
			c.rejected++
			return nil, false, ErrSaturated
		}
		f.waiters++
		c.coalesced++
		return f, false, nil
	}
	f = &Flight{c: c, key: key, done: make(chan struct{}), waiters: 1}
	c.flights[key] = f
	return f, true, nil
}

// Finish publishes the leader's result to every attached request and
// starts the linger window (failures are forgotten immediately so the
// next joiner retries).
func (f *Flight) Finish(v any, err error) {
	f.val, f.err = v, err
	f.c.mu.Lock()
	f.finished = true
	f.c.mu.Unlock()
	close(f.done)
	if err != nil || f.c.Window <= 0 {
		f.c.forget(f.key, f)
	} else {
		time.AfterFunc(f.c.Window, func() { f.c.forget(f.key, f) })
	}
}

// Detach removes one attached request from the flight and returns how
// many remain. A request that abandons its flight (client disconnect,
// cancel) detaches so the remaining count reflects who still wants the
// result — the leader uses it to decide whether canceling its work
// would strand anyone.
func (f *Flight) Detach() int {
	f.c.mu.Lock()
	defer f.c.mu.Unlock()
	if f.waiters > 0 {
		f.waiters--
	}
	return f.waiters
}

// Done is closed once the leader has called Finish.
func (f *Flight) Done() <-chan struct{} { return f.done }

// Result returns the published result; valid only after Done is closed.
func (f *Flight) Result() (any, error) { return f.val, f.err }

// Wait blocks until the flight finishes or ctx expires.
func (f *Flight) Wait(ctx context.Context) (any, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Do returns fn's result for key, executing fn at most once across all
// concurrent (and Window-recent) callers of the same key. shared reports
// whether the result came from another caller's execution.
func (c *Coalescer) Do(ctx context.Context, key string, fn func() (any, error)) (v any, shared bool, err error) {
	f, leader, err := c.Join(key)
	if err != nil {
		return nil, false, err
	}
	if !leader {
		v, err = f.Wait(ctx)
		return v, true, err
	}
	v, err = fn()
	f.Finish(v, err)
	return v, false, err
}

// forget drops the flight, unless a newer one already took the key.
func (c *Coalescer) forget(key string, f *Flight) {
	c.mu.Lock()
	if c.flights[key] == f {
		delete(c.flights, key)
	}
	c.mu.Unlock()
}

// Stats snapshots the coalescer counters.
func (c *Coalescer) Stats() CoalesceStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CoalesceStats{InFlight: len(c.flights), Coalesced: c.coalesced, Rejected: c.rejected}
}
