package minic

// This file defines the abstract syntax tree produced by the parser.

// Program is a parsed translation unit.
type Program struct {
	Funcs []*FuncDecl
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []*Param
	Body   *BlockStmt
	Pos    Pos
}

// Param is a function parameter.
type Param struct {
	Name string
	Type *Type
	Pos  Pos
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// Expr is implemented by all expression nodes. Every expression carries the
// type assigned by semantic analysis.
type Expr interface {
	exprNode()
	Type() *Type
	SetType(*Type)
}

type exprBase struct{ typ *Type }

func (e *exprBase) exprNode()       {}
func (e *exprBase) Type() *Type     { return e.typ }
func (e *exprBase) SetType(t *Type) { e.typ = t }

// --- Statements ---

// BlockStmt is a `{ ... }` compound statement.
type BlockStmt struct {
	Stmts []Stmt
	Pos   Pos
}

// DeclStmt declares a local variable, optionally with an initializer.
type DeclStmt struct {
	Name string
	Typ  *Type
	Init Expr // nil for arrays and uninitialized scalars
	Pos  Pos
}

// ExprStmt evaluates an expression for its side effects (assignment, call).
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// ForStmt is a C for loop. Unroll>0 requests unrolling by that factor
// (from `#pragma unroll N`). Init and Post hold one statement per
// comma-separated clause, e.g. `for(int k = 0, buffer = 0; ...; k += BS, ++buffer)`.
type ForStmt struct {
	Init   []Stmt // DeclStmts or ExprStmts; empty if absent
	Cond   Expr
	Post   []Stmt // ExprStmts; empty if absent
	Body   *BlockStmt
	Unroll int
	Pos    Pos
}

// IfStmt is an if/else statement.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else *BlockStmt // nil if absent
	Pos  Pos
}

// ReturnStmt returns from the function.
type ReturnStmt struct {
	X   Expr // nil for `return;`
	Pos Pos
}

// CriticalStmt is an OpenMP `#pragma omp critical` region.
type CriticalStmt struct {
	Body *BlockStmt
	Pos  Pos
}

// BarrierStmt is an OpenMP `#pragma omp barrier`.
type BarrierStmt struct {
	Pos Pos
}

// TargetStmt is an OpenMP `#pragma omp target parallel` offload region: the
// kernel that Nymble turns into an accelerator.
type TargetStmt struct {
	Maps       []MapClause
	NumThreads int // 0 = unspecified (default 1)
	Body       *BlockStmt
	Pos        Pos
}

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*ForStmt) stmtNode()      {}
func (*IfStmt) stmtNode()       {}
func (*ReturnStmt) stmtNode()   {}
func (*CriticalStmt) stmtNode() {}
func (*BarrierStmt) stmtNode()  {}
func (*TargetStmt) stmtNode()   {}

// MapDir is the direction of an OpenMP map clause.
type MapDir int

// Map clause directions (OpenMP 4.0 `map(to: ...)` etc.).
const (
	MapTo MapDir = iota
	MapFrom
	MapToFrom
)

func (d MapDir) String() string {
	switch d {
	case MapTo:
		return "to"
	case MapFrom:
		return "from"
	case MapToFrom:
		return "tofrom"
	}
	return "map?"
}

// MapClause describes one mapped variable, e.g. `map(to: A[0:DIM*DIM])`.
// For scalars Low and Len are nil.
type MapClause struct {
	Dir  MapDir
	Name string
	Low  Expr // nil for scalar maps
	Len  Expr // nil for scalar maps
	Pos  Pos
}

// --- Expressions ---

// Ident is a variable reference.
type Ident struct {
	exprBase
	Name string
	Pos  Pos
}

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int64
	Pos   Pos
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	exprBase
	Value float64
	Pos   Pos
}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpLt
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
	OpLAnd
	OpLOr
)

var binOpNames = [...]string{"+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&&", "||"}

func (op BinOp) String() string { return binOpNames[op] }

// IsComparison reports whether op yields a boolean (int 0/1) result.
func (op BinOp) IsComparison() bool { return op >= OpLt && op <= OpNe }

// IsLogical reports whether op is && or ||.
func (op BinOp) IsLogical() bool { return op == OpLAnd || op == OpLOr }

// Binary is a binary expression.
type Binary struct {
	exprBase
	Op   BinOp
	L, R Expr
	Pos  Pos
}

// Unary is a prefix unary expression: -x or !x.
type Unary struct {
	exprBase
	Neg bool // true: -, false: !
	X   Expr
	Pos Pos
}

// Cond is the ternary conditional c ? a : b.
type Cond struct {
	exprBase
	C, A, B Expr
	Pos     Pos
}

// Index is a (possibly multi-dimensional) array/pointer subscript a[i][j].
type Index struct {
	exprBase
	Base Expr
	Idx  []Expr
	Pos  Pos
}

// VecElem is a lane access into a vector value: v[i] where v is VECTOR.
type VecElem struct {
	exprBase
	Vec Expr
	Idx Expr
	Pos Pos
}

// VecLoad is a reinterpret-cast vector load: *((VECTOR*)&A[expr]).
type VecLoad struct {
	exprBase
	Base Expr // the pointer/array expression A
	Idx  Expr // the scalar element index
	Pos  Pos
}

// Assign is an assignment, possibly compound (op != nil).
type AssignExpr struct {
	exprBase
	LHS Expr   // Ident, Index, VecElem or VecLoad (as a vector store target)
	Op  *BinOp // nil for plain "=", else the compound operator
	RHS Expr
	Pos Pos
}

// IncDec is the ++/-- statement-expression (prefix or postfix; MiniC only
// allows it in statement or for-post position so the distinction is moot).
type IncDec struct {
	exprBase
	X   Expr
	Inc bool
	Pos Pos
}

// Call is a builtin function call (omp_get_thread_num etc.).
type Call struct {
	exprBase
	Name string
	Args []Expr
	Pos  Pos
}

// Cast is a parse-time cast node, e.g. `(VECTOR*)expr`. The parser folds the
// `*((VECTOR*)&A[i])` pattern into VecLoad; any cast that survives to
// semantic analysis is rejected.
type Cast struct {
	exprBase
	To  *Type
	X   Expr
	Pos Pos
}

// AddrOf is a parse-time `&expr` node, only valid under a vector cast.
type AddrOf struct {
	exprBase
	X   Expr
	Pos Pos
}

// InitList is a brace initializer, used to zero/broadcast-initialize vector
// declarations: `VECTOR sum = {0.0f};`.
type InitList struct {
	exprBase
	Elems []Expr
	Pos   Pos
}
