package minic

import (
	"strings"
	"testing"
)

// FuzzParse asserts that the whole frontend — lexer, parser, pragma
// parsing, and semantic analysis — never panics: arbitrary input must
// produce either a Program or an error value.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"void f() {}",
		"int main() { return 0; }",
		"float f(float* A, int n) { float s = 0.0f; for (int i = 0; i < n; ++i) { s += A[i]; } return s; }",
		`#define N 16
void k(float* A, float* C) {
#pragma omp target parallel map(to:A[0:N]) map(from:C[0:N]) num_threads(4)
  {
    int id = omp_get_thread_num();
    C[id] = A[id] * 2.0f;
  }
}`,
		`void v(float* X) {
#pragma omp target parallel map(tofrom:X[0:64]) num_threads(2)
  {
    VECTOR a = *((VECTOR*)&X[0]);
    #pragma omp critical
    { X[0] = a[0]; }
    #pragma omp barrier
  }
}`,
		"#pragma unroll 4\nfor (int i = 0; i < 4; i++) {}",
		"void f() { int x = (1 + 2) * 3 % 4; x = x ? -x : !x; x++; --x; }",
		"#define A B\n#define B A\nint f() { return A; }",
		"void f() { float y[4][4]; y[1][2] = 3.0f; }",
		strings.Repeat("(", 64) + "1" + strings.Repeat(")", 64),
		"void f(int",
		"#pragma omp target parallel map(",
		"\x00\xff\n#define",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Both with and without a define table, since macro expansion is
		// its own recursion path.
		_, _ = Parse(src, Options{})
		_, _ = Parse(src, Options{Defines: map[string]string{"DTYPE": "float", "DIM": "8"}})
	})
}

// TestParseDepthGuard pins the behavior the fuzz target relies on: deep
// nesting is rejected with a ParseError rather than a stack overflow.
func TestParseDepthGuard(t *testing.T) {
	cases := map[string]string{
		"parens": "void f() { int x = " + strings.Repeat("(", 5000) + "1" + strings.Repeat(")", 5000) + "; }",
		"unary":  "void f() { int x = " + strings.Repeat("-", 5000) + "1; }",
		"blocks": "void f() " + strings.Repeat("{", 5000) + strings.Repeat("}", 5000),
		"assign": "void f() { int a = 0; a " + strings.Repeat("= a ", 5000) + "= 1; }",
	}
	for name, src := range cases {
		if _, err := Parse(src, Options{}); err == nil {
			t.Errorf("%s: expected error for deeply nested input", name)
		} else if !strings.Contains(err.Error(), "nesting exceeds") {
			t.Errorf("%s: expected nesting-depth error, got: %v", name, err)
		}
	}
	// Realistic nesting depths must still parse.
	ok := "void f() { int x = " + strings.Repeat("(", 50) + "1" + strings.Repeat(")", 50) + "; }"
	if _, err := Parse(ok, Options{}); err != nil {
		t.Errorf("moderate nesting should parse, got: %v", err)
	}
}
