package minic

import (
	"strings"
	"testing"
)

// gemmNaive is the paper's Fig. 3 kernel (naive GEMM with a critical
// section), lightly adapted to the MiniC subset.
const gemmNaive = `
#define DTYPE float

void matmul(DTYPE* A, DTYPE* B, DTYPE* C, int DIM) {
  #pragma omp target parallel map(from:C[0:DIM*DIM]) \
    map(to:A[0:DIM*DIM], B[0:DIM*DIM]) num_threads(8)
  {
    int my_id = omp_get_thread_num();
    int num_threads = omp_get_num_threads();
    for (int i = 0; i < DIM; ++i) {
      for (int j = 0; j < DIM; ++j) {
        DTYPE sum = 0;
        for (int k = my_id; k < DIM; k += num_threads) {
          sum += A[i*DIM+k] * B[k*DIM+j];
        }
        #pragma omp critical
        {
          C[i*DIM + j] = sum;
        }
      }
    }
  }
}
`

// piKernel is the paper's Fig. 10 kernel (infinite series for pi).
const piKernel = `
#define DTYPE float
#define BS_compute 8

DTYPE pi(int steps, int threads) {
  DTYPE final_sum = 0.0;
  DTYPE step = 1.0/(DTYPE)steps;
  #pragma omp target parallel map(to:step) map(tofrom:final_sum) num_threads(8)
  {
    int step_per_thread = steps/omp_get_num_threads();
    int start_i = omp_get_thread_num()*step_per_thread;
    VECTOR sum = {0.0f};
    DTYPE local_step = step;
    for (int i = 0; i < step_per_thread; i += BS_compute) {
      #pragma unroll BS_compute
      for (int j = 0; j < BS_compute; j++) {
        DTYPE x = ((DTYPE)(i+start_i+j)+0.5f)*local_step;
        sum[j%4] += 4.0f / (1.0f+x*x);
      }
    }
    #pragma omp critical
    for (int i = 0; i < 4; i++) {
      final_sum += sum[i];
    }
  }
  return final_sum;
}
`

func mustParse(t *testing.T, src string, opts Options) *Program {
	t.Helper()
	prog, err := Parse(src, opts)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return prog
}

func TestParseGEMMNaive(t *testing.T) {
	prog := mustParse(t, gemmNaive, Options{})
	f := prog.Func("matmul")
	if f == nil {
		t.Fatal("matmul not found")
	}
	if len(f.Params) != 4 {
		t.Fatalf("params = %d, want 4", len(f.Params))
	}
	if !f.Params[0].Type.IsPointer() || f.Params[0].Type.Elem.Basic != Float {
		t.Errorf("param A type = %s, want float*", f.Params[0].Type)
	}
	if f.Params[3].Type.Basic != Int {
		t.Errorf("param DIM type = %s, want int", f.Params[3].Type)
	}
	_, ts, err := FindTarget(prog)
	if err != nil {
		t.Fatal(err)
	}
	if ts.NumThreads != 8 {
		t.Errorf("num_threads = %d, want 8", ts.NumThreads)
	}
	if len(ts.Maps) != 3 {
		t.Fatalf("maps = %d, want 3", len(ts.Maps))
	}
	if ts.Maps[0].Dir != MapFrom || ts.Maps[0].Name != "C" {
		t.Errorf("map[0] = %s %s", ts.Maps[0].Dir, ts.Maps[0].Name)
	}
	if ts.Maps[1].Dir != MapTo || ts.Maps[1].Name != "A" {
		t.Errorf("map[1] = %s %s", ts.Maps[1].Dir, ts.Maps[1].Name)
	}
	if ts.Maps[2].Dir != MapTo || ts.Maps[2].Name != "B" {
		t.Errorf("map[2] = %s %s", ts.Maps[2].Dir, ts.Maps[2].Name)
	}
}

func TestParsePiKernel(t *testing.T) {
	prog := mustParse(t, piKernel, Options{})
	f := prog.Func("pi")
	if f == nil {
		t.Fatal("pi not found")
	}
	if f.Ret.Basic != Float {
		t.Errorf("return type = %s, want float", f.Ret)
	}
	_, ts, err := FindTarget(prog)
	if err != nil {
		t.Fatal(err)
	}
	// scalar maps: step (to), final_sum (tofrom)
	if len(ts.Maps) != 2 || ts.Maps[0].Low != nil || ts.Maps[1].Low != nil {
		t.Fatalf("unexpected maps: %+v", ts.Maps)
	}
	if ts.Maps[1].Dir != MapToFrom {
		t.Errorf("final_sum dir = %s, want tofrom", ts.Maps[1].Dir)
	}
}

func TestParseUnrollPragma(t *testing.T) {
	prog := mustParse(t, piKernel, Options{})
	_, ts, _ := FindTarget(prog)
	var unrolled *ForStmt
	var walk func(b *BlockStmt)
	walk = func(b *BlockStmt) {
		for _, s := range b.Stmts {
			switch st := s.(type) {
			case *ForStmt:
				if st.Unroll > 0 {
					unrolled = st
				}
				walk(st.Body)
			case *BlockStmt:
				walk(st)
			case *CriticalStmt:
				walk(st.Body)
			}
		}
	}
	walk(ts.Body)
	if unrolled == nil {
		t.Fatal("no unrolled loop found")
	}
	if unrolled.Unroll != 8 {
		t.Errorf("unroll factor = %d, want 8 (BS_compute)", unrolled.Unroll)
	}
}

func TestParseVectorLoad(t *testing.T) {
	src := `
void f(float* A, int DIM) {
  #pragma omp target parallel map(to:A[0:DIM]) num_threads(2)
  {
    VECTOR v = *((VECTOR*)&A[omp_get_thread_num()*4]);
    float x = v[0] + v[3];
    A[0] = x;
  }
}
`
	prog := mustParse(t, src, Options{VectorLanes: 4})
	_, ts, err := FindTarget(prog)
	if err != nil {
		t.Fatal(err)
	}
	decl := ts.Body.Stmts[0].(*DeclStmt)
	vl, ok := decl.Init.(*VecLoad)
	if !ok {
		t.Fatalf("init is %T, want *VecLoad", decl.Init)
	}
	if !vl.Type().IsVector() || vl.Type().Lanes != 4 {
		t.Errorf("vecload type = %s", vl.Type())
	}
}

func TestParseVectorStoreTarget(t *testing.T) {
	src := `
void f(float* C) {
  #pragma omp target parallel map(from:C[0:16]) num_threads(1)
  {
    VECTOR acc = {0.0f};
    *((VECTOR*)&C[4]) = acc;
    *((VECTOR*)&C[8]) += acc;
  }
}
`
	prog := mustParse(t, src, Options{})
	_, ts, _ := FindTarget(prog)
	st1 := ts.Body.Stmts[1].(*ExprStmt).X.(*AssignExpr)
	if _, ok := st1.LHS.(*VecLoad); !ok {
		t.Fatalf("store target is %T, want *VecLoad", st1.LHS)
	}
	st2 := ts.Body.Stmts[2].(*ExprStmt).X.(*AssignExpr)
	if st2.Op == nil || *st2.Op != OpAdd {
		t.Errorf("expected compound += store")
	}
}

func TestParseMultiDeclFor(t *testing.T) {
	src := `
void f(int* A) {
  #pragma omp target parallel map(tofrom:A[0:64]) num_threads(1)
  {
    for (int k = 0, buffer = 0; k < 8; k += 2, ++buffer) {
      A[buffer] = k;
    }
  }
}
`
	prog := mustParse(t, src, Options{})
	_, ts, _ := FindTarget(prog)
	f := ts.Body.Stmts[0].(*ForStmt)
	if len(f.Init) != 2 {
		t.Fatalf("init decls = %d, want 2", len(f.Init))
	}
	if len(f.Post) != 2 {
		t.Fatalf("post stmts = %d, want 2", len(f.Post))
	}
}

func TestParseLocalArrays(t *testing.T) {
	src := `
#define BLOCK_SIZE 8
#define BUFFER_SIZE 2
void f(float* A) {
  #pragma omp target parallel map(to:A[0:64]) num_threads(1)
  {
    VECTOR A_local[BUFFER_SIZE][BLOCK_SIZE];
    float C_local[BLOCK_SIZE];
    A_local[0][0] = *((VECTOR*)&A[0]);
    C_local[1] = A_local[0][0][2];
    A[0] = C_local[1];
  }
}
`
	prog := mustParse(t, src, Options{})
	_, ts, _ := FindTarget(prog)
	d := ts.Body.Stmts[0].(*DeclStmt)
	if !d.Typ.IsArray() || len(d.Typ.Dims) != 2 || d.Typ.Dims[0] != 2 || d.Typ.Dims[1] != 8 {
		t.Fatalf("A_local type = %s", d.Typ)
	}
	if !d.Typ.Elem.IsVector() {
		t.Fatalf("A_local elem = %s, want vector", d.Typ.Elem)
	}
	// The lane access A_local[0][0][2] must become VecElem(Index(...)).
	asn := ts.Body.Stmts[3].(*ExprStmt).X.(*AssignExpr)
	if _, ok := asn.RHS.(*VecElem); !ok {
		t.Fatalf("RHS is %T, want *VecElem", asn.RHS)
	}
}

func TestParseTernaryAndCast(t *testing.T) {
	src := `
void f(float* A, int n) {
  #pragma omp target parallel map(tofrom:A[0:16]) num_threads(1)
  {
    float x = (float)n + 0.5f;
    A[0] = (n == 1 ? 0.0f : 1.0f) * x;
  }
}
`
	prog := mustParse(t, src, Options{})
	_, ts, _ := FindTarget(prog)
	d := ts.Body.Stmts[0].(*DeclStmt)
	if _, ok := d.Init.(*Binary); !ok {
		t.Fatalf("init is %T", d.Init)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"missing semicolon", "void f() { int x = 1 }", "expected"},
		{"undeclared", "void f() { x = 1; }", "undeclared"},
		{"two targets", `void f(int* A){
			#pragma omp target parallel map(tofrom:A[0:4]) num_threads(1)
			{ A[0] = 1; }
			#pragma omp target parallel map(tofrom:A[0:4]) num_threads(1)
			{ A[0] = 2; }
		}`, "one target region"},
		{"critical outside target", "void f() { \n#pragma omp critical\n { int x = 1; x = x; } }", "outside a target"},
		{"bad map", `void f(float* A){
			#pragma omp target parallel map(sideways:A[0:4]) num_threads(1)
			{ A[0] = 1; }
		}`, "map direction"},
		{"pointer map without section", `void f(float* A){
			#pragma omp target parallel map(to:A) num_threads(1)
			{ A[0] = 1; }
		}`, "array section"},
		{"negative array dim", "void f() { int a[0]; }", "positive"},
		{"nonconst array dim", "void f(int n) { int a[n]; }", "constant"},
		{"assign to rvalue", "void f() { int x = 1; x + 1 = 2; }", "lvalue"},
		{"unknown call", "void f() { int x = foo(); }", "unknown function"},
		{"omp builtin outside target", "void f() { int x = omp_get_thread_num(); }", "target region"},
		{"mod float", "void f() { float x = 1.0; float y = x % 2.0; }", "integer"},
		{"return in target", `void f(int* A){
			#pragma omp target parallel map(tofrom:A[0:4]) num_threads(1)
			{ return; }
		}`, "not allowed"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src, Options{})
			if err == nil {
				t.Fatalf("expected error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestParseIfElse(t *testing.T) {
	src := `
void f(int* A, int n) {
  #pragma omp target parallel map(tofrom:A[0:8]) num_threads(1)
  {
    if (n < 4) {
      A[0] = 1;
    } else {
      A[0] = 2;
    }
    if (n > 2)
      A[1] = 3;
  }
}
`
	prog := mustParse(t, src, Options{})
	_, ts, _ := FindTarget(prog)
	ifst := ts.Body.Stmts[0].(*IfStmt)
	if ifst.Else == nil {
		t.Error("else branch missing")
	}
	if2 := ts.Body.Stmts[1].(*IfStmt)
	if if2.Else != nil {
		t.Error("unexpected else")
	}
	if len(if2.Then.Stmts) != 1 {
		t.Error("unbraced then body should have one statement")
	}
}

func TestParseVectorLanesFromDefine(t *testing.T) {
	src := `
void f(float* A) {
  #pragma omp target parallel map(to:A[0:64]) num_threads(1)
  {
    VECTOR v = *((VECTOR*)&A[0]);
    A[0] = v[7];
  }
}
`
	prog := mustParse(t, src, Options{Defines: map[string]string{"VECTOR_LEN": "8"}})
	_, ts, _ := FindTarget(prog)
	d := ts.Body.Stmts[0].(*DeclStmt)
	if d.Typ.Lanes != 8 {
		t.Errorf("lanes = %d, want 8", d.Typ.Lanes)
	}
}

func TestFindTargetMissing(t *testing.T) {
	prog := mustParse(t, "void f() { int x = 1; x = x + 1; }", Options{})
	if _, _, err := FindTarget(prog); err == nil {
		t.Fatal("expected error for missing target region")
	}
}
