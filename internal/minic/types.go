package minic

import (
	"fmt"
	"strings"
)

// BasicKind enumerates the scalar base types of MiniC.
type BasicKind int

// Scalar base types. DTYPE in the paper's kernels is a #define alias for
// float; VECTOR is a short SIMD vector of float whose lane count is the
// VECTOR_LEN definition (the paper uses 128-bit vectors, i.e. 4 lanes).
const (
	Void BasicKind = iota
	Int
	Float
)

func (b BasicKind) String() string {
	switch b {
	case Void:
		return "void"
	case Int:
		return "int"
	case Float:
		return "float"
	}
	return fmt.Sprintf("BasicKind(%d)", int(b))
}

// Type is a MiniC type: a scalar, a vector of float, a pointer, or an
// N-dimensional array.
type Type struct {
	Basic BasicKind
	Lanes int   // >1 for vector-of-float types
	Ptr   bool  // pointer to the element type described by the rest
	Dims  []int // array dimensions, outermost first
	Elem  *Type // element type for pointers and arrays
}

// Convenience constructors.
func TypeVoid() *Type  { return &Type{Basic: Void} }
func TypeInt() *Type   { return &Type{Basic: Int} }
func TypeFloat() *Type { return &Type{Basic: Float} }

// TypeVector returns a float vector type with the given lane count.
func TypeVector(lanes int) *Type { return &Type{Basic: Float, Lanes: lanes} }

// TypePointer returns a pointer to elem.
func TypePointer(elem *Type) *Type { return &Type{Ptr: true, Elem: elem} }

// TypeArray returns an array of elem with the given dimensions.
func TypeArray(elem *Type, dims ...int) *Type {
	return &Type{Dims: append([]int(nil), dims...), Elem: elem}
}

// IsScalar reports whether t is a non-vector int or float.
func (t *Type) IsScalar() bool {
	return t != nil && !t.Ptr && len(t.Dims) == 0 && t.Lanes <= 1 && t.Basic != Void
}

// IsVector reports whether t is a float vector.
func (t *Type) IsVector() bool {
	return t != nil && !t.Ptr && len(t.Dims) == 0 && t.Lanes > 1
}

// IsPointer reports whether t is a pointer.
func (t *Type) IsPointer() bool { return t != nil && t.Ptr }

// IsArray reports whether t is an array.
func (t *Type) IsArray() bool { return t != nil && !t.Ptr && len(t.Dims) > 0 }

// IsNumeric reports whether t participates in arithmetic.
func (t *Type) IsNumeric() bool { return t.IsScalar() || t.IsVector() }

// ElemType returns the element type of a pointer or array, or nil.
func (t *Type) ElemType() *Type {
	if t == nil {
		return nil
	}
	if t.Ptr {
		return t.Elem
	}
	if len(t.Dims) == 1 {
		return t.Elem
	}
	if len(t.Dims) > 1 {
		return &Type{Dims: t.Dims[1:], Elem: t.Elem}
	}
	return nil
}

// ScalarWords returns the number of 32-bit words a value of this type
// occupies (scalars = 1, vectors = lane count). Pointers occupy one word of
// address. Arrays return the total element word count.
func (t *Type) ScalarWords() int {
	switch {
	case t == nil:
		return 0
	case t.Ptr:
		return 1
	case len(t.Dims) > 0:
		n := 1
		for _, d := range t.Dims {
			n *= d
		}
		return n * t.Elem.ScalarWords()
	case t.Lanes > 1:
		return t.Lanes
	case t.Basic == Void:
		return 0
	default:
		return 1
	}
}

// SizeBytes returns the byte size of the type (4 bytes per 32-bit word).
func (t *Type) SizeBytes() int { return 4 * t.ScalarWords() }

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Ptr != o.Ptr || t.Basic != o.Basic || t.Lanes != o.Lanes || len(t.Dims) != len(o.Dims) {
		return false
	}
	for i := range t.Dims {
		if t.Dims[i] != o.Dims[i] {
			return false
		}
	}
	if t.Elem != nil || o.Elem != nil {
		if t.Elem == nil || o.Elem == nil {
			return false
		}
		return t.Elem.Equal(o.Elem)
	}
	return true
}

func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	if t.Ptr {
		return t.Elem.String() + "*"
	}
	if len(t.Dims) > 0 {
		var b strings.Builder
		b.WriteString(t.Elem.String())
		for _, d := range t.Dims {
			fmt.Fprintf(&b, "[%d]", d)
		}
		return b.String()
	}
	if t.Lanes > 1 {
		return fmt.Sprintf("float<%d>", t.Lanes)
	}
	return t.Basic.String()
}
