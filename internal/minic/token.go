// Package minic implements the frontend of the Nymble-like HLS flow: a
// lexer, parser and semantic analyzer for a C subset with OpenMP 4.0
// accelerator pragmas (target parallel, critical) and vendor pragmas
// (unroll), mirroring the input language of the paper's Nymble compiler.
package minic

import "fmt"

// Kind enumerates lexical token kinds.
type Kind int

// Token kinds. Keywords and punctuation cover the C subset used by the
// paper's kernels (Figs. 3, 4, 5 and 10).
const (
	EOF Kind = iota
	IDENT
	INTLIT
	FLOATLIT
	PRAGMA // whole "#pragma ..." line; payload in Text

	// Keywords.
	KwVoid
	KwInt
	KwFloat
	KwFor
	KwIf
	KwElse
	KwReturn
	KwConst

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Comma
	Semicolon
	Colon
	Question
	Assign
	Plus
	Minus
	Star
	Slash
	Percent
	PlusAssign
	MinusAssign
	StarAssign
	SlashAssign
	Inc
	Dec
	Lt
	Le
	Gt
	Ge
	EqEq
	NotEq
	Not
	AndAnd
	OrOr
	Amp
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INTLIT: "int literal",
	FLOATLIT: "float literal", PRAGMA: "#pragma",
	KwVoid: "void", KwInt: "int", KwFloat: "float", KwFor: "for",
	KwIf: "if", KwElse: "else", KwReturn: "return", KwConst: "const",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Comma: ",", Semicolon: ";",
	Colon: ":", Question: "?", Assign: "=",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	PlusAssign: "+=", MinusAssign: "-=", StarAssign: "*=", SlashAssign: "/=",
	Inc: "++", Dec: "--",
	Lt: "<", Le: "<=", Gt: ">", Ge: ">=", EqEq: "==", NotEq: "!=",
	Not: "!", AndAnd: "&&", OrOr: "||", Amp: "&",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"void": KwVoid, "int": KwInt, "float": KwFloat, "for": KwFor,
	"if": KwIf, "else": KwElse, "return": KwReturn, "const": KwConst,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token.
type Token struct {
	Kind Kind
	Text string // raw text: identifier name, literal digits, pragma payload
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, FLOATLIT:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	case PRAGMA:
		return fmt.Sprintf("#pragma %q", t.Text)
	default:
		return t.Kind.String()
	}
}
