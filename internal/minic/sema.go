package minic

import "fmt"

// SemaError describes a semantic error with its source position.
type SemaError struct {
	Pos Pos
	Msg string
}

func (e *SemaError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Builtins callable from MiniC. Both come from the OpenMP runtime and are
// evaluated per hardware thread by the accelerator.
var builtinFuncs = map[string]*Type{
	"omp_get_thread_num":  TypeInt(),
	"omp_get_num_threads": TypeInt(),
}

// Analyze type-checks the program in place, resolves identifier types,
// rewrites vector lane accesses, inserts implicit int<->float conversions,
// and enforces the structural constraints of the offload model (one target
// region; critical/barrier only inside it).
func Analyze(prog *Program, lanes int) error {
	a := &analyzer{lanes: lanes}
	for _, f := range prog.Funcs {
		if err := a.checkFunc(f); err != nil {
			return err
		}
	}
	return nil
}

type scope struct {
	vars   map[string]*Type
	parent *scope
}

func (s *scope) lookup(name string) (*Type, bool) {
	for c := s; c != nil; c = c.parent {
		if t, ok := c.vars[name]; ok {
			return t, true
		}
	}
	return nil, false
}

func (s *scope) declare(name string, t *Type) bool {
	if _, exists := s.vars[name]; exists {
		return false
	}
	s.vars[name] = t
	return true
}

type analyzer struct {
	lanes     int
	fn        *FuncDecl
	inTarget  bool
	sawTarget bool
}

func (a *analyzer) errf(p Pos, format string, args ...any) error {
	return &SemaError{Pos: p, Msg: fmt.Sprintf(format, args...)}
}

func (a *analyzer) checkFunc(f *FuncDecl) error {
	a.fn = f
	sc := &scope{vars: map[string]*Type{}}
	for _, prm := range f.Params {
		if prm.Type.Basic == Void && !prm.Type.Ptr {
			return a.errf(prm.Pos, "parameter %s has void type", prm.Name)
		}
		if !sc.declare(prm.Name, prm.Type) {
			return a.errf(prm.Pos, "duplicate parameter %s", prm.Name)
		}
	}
	return a.checkBlock(f.Body, sc)
}

func (a *analyzer) checkBlock(b *BlockStmt, parent *scope) error {
	sc := &scope{vars: map[string]*Type{}, parent: parent}
	for _, s := range b.Stmts {
		if err := a.checkStmt(s, sc); err != nil {
			return err
		}
	}
	return nil
}

func (a *analyzer) checkStmt(s Stmt, sc *scope) error {
	switch st := s.(type) {
	case *BlockStmt:
		return a.checkBlock(st, sc)
	case *DeclStmt:
		return a.checkDecl(st, sc)
	case *ExprStmt:
		x, err := a.checkExpr(st.X, sc)
		if err != nil {
			return err
		}
		switch x.(type) {
		case *AssignExpr, *IncDec, *Call:
		default:
			return a.errf(st.Pos, "expression statement has no effect")
		}
		st.X = x
		return nil
	case *ForStmt:
		inner := &scope{vars: map[string]*Type{}, parent: sc}
		for _, is := range st.Init {
			if err := a.checkStmt(is, inner); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			c, err := a.checkExpr(st.Cond, inner)
			if err != nil {
				return err
			}
			if !c.Type().IsScalar() {
				return a.errf(st.Pos, "for condition must be scalar, got %s", c.Type())
			}
			st.Cond = c
		}
		for _, ps := range st.Post {
			if err := a.checkStmt(ps, inner); err != nil {
				return err
			}
		}
		return a.checkBlock(st.Body, inner)
	case *IfStmt:
		c, err := a.checkExpr(st.Cond, sc)
		if err != nil {
			return err
		}
		if !c.Type().IsScalar() {
			return a.errf(st.Pos, "if condition must be scalar, got %s", c.Type())
		}
		st.Cond = c
		if err := a.checkBlock(st.Then, sc); err != nil {
			return err
		}
		if st.Else != nil {
			return a.checkBlock(st.Else, sc)
		}
		return nil
	case *ReturnStmt:
		if a.inTarget {
			return a.errf(st.Pos, "return is not allowed inside a target region")
		}
		if st.X != nil {
			x, err := a.checkExpr(st.X, sc)
			if err != nil {
				return err
			}
			if a.fn.Ret.Basic == Void && !a.fn.Ret.Ptr {
				return a.errf(st.Pos, "void function returns a value")
			}
			st.X = a.convertTo(x, a.fn.Ret)
		}
		return nil
	case *CriticalStmt:
		if !a.inTarget {
			return a.errf(st.Pos, "omp critical outside a target region")
		}
		return a.checkBlock(st.Body, sc)
	case *BarrierStmt:
		if !a.inTarget {
			return a.errf(st.Pos, "omp barrier outside a target region")
		}
		return nil
	case *TargetStmt:
		if a.inTarget {
			return a.errf(st.Pos, "nested target regions are not supported")
		}
		if a.sawTarget {
			return a.errf(st.Pos, "only one target region per application is supported (as in Nymble)")
		}
		a.sawTarget = true
		for i := range st.Maps {
			if err := a.checkMap(&st.Maps[i], sc); err != nil {
				return err
			}
		}
		a.inTarget = true
		err := a.checkBlock(st.Body, sc)
		a.inTarget = false
		return err
	}
	return a.errf(StmtPos(s), "unhandled statement %T", s)
}

func (a *analyzer) checkDecl(st *DeclStmt, sc *scope) error {
	if st.Typ.Basic == Void && !st.Typ.Ptr && len(st.Typ.Dims) == 0 {
		return a.errf(st.Pos, "variable %s has void type", st.Name)
	}
	if st.Init != nil {
		if il, ok := st.Init.(*InitList); ok {
			if !st.Typ.IsVector() {
				return a.errf(st.Pos, "brace initializer is only supported for VECTOR variables")
			}
			if len(il.Elems) != 1 && len(il.Elems) != st.Typ.Lanes {
				return a.errf(st.Pos, "vector initializer must have 1 or %d elements", st.Typ.Lanes)
			}
			for i, e := range il.Elems {
				x, err := a.checkExpr(e, sc)
				if err != nil {
					return err
				}
				il.Elems[i] = a.convertTo(x, TypeFloat())
			}
			il.SetType(st.Typ)
		} else {
			x, err := a.checkExpr(st.Init, sc)
			if err != nil {
				return err
			}
			if st.Typ.IsArray() {
				return a.errf(st.Pos, "array %s cannot have a scalar initializer", st.Name)
			}
			st.Init = a.convertTo(x, st.Typ)
		}
	}
	if !sc.declare(st.Name, st.Typ) {
		return a.errf(st.Pos, "redeclaration of %s in the same scope", st.Name)
	}
	return nil
}

func (a *analyzer) checkMap(mc *MapClause, sc *scope) error {
	t, ok := sc.lookup(mc.Name)
	if !ok {
		return a.errf(mc.Pos, "map clause references unknown variable %s", mc.Name)
	}
	if mc.Low != nil {
		low, err := a.checkExpr(mc.Low, sc)
		if err != nil {
			return err
		}
		length, err := a.checkExpr(mc.Len, sc)
		if err != nil {
			return err
		}
		if !t.IsPointer() {
			return a.errf(mc.Pos, "array section on non-pointer %s", mc.Name)
		}
		mc.Low = a.convertTo(low, TypeInt())
		mc.Len = a.convertTo(length, TypeInt())
	} else if t.IsPointer() {
		return a.errf(mc.Pos, "pointer %s must be mapped with an array section [low:len]", mc.Name)
	}
	return nil
}

// convertTo wraps x in a Cast if its type differs from want (int<->float
// conversions only; identical types pass through).
func (a *analyzer) convertTo(x Expr, want *Type) Expr {
	have := x.Type()
	if have.Equal(want) {
		return x
	}
	if have.IsScalar() && want.IsScalar() {
		c := &Cast{To: want, X: x, Pos: ExprPos(x)}
		c.SetType(want)
		return c
	}
	return x // mismatch reported by caller via typeCompatible checks
}

func (a *analyzer) checkExpr(e Expr, sc *scope) (Expr, error) {
	switch x := e.(type) {
	case *IntLit:
		x.SetType(TypeInt())
		return x, nil
	case *FloatLit:
		x.SetType(TypeFloat())
		return x, nil
	case *Ident:
		t, ok := sc.lookup(x.Name)
		if !ok {
			return nil, a.errf(x.Pos, "undeclared identifier %s", x.Name)
		}
		x.SetType(t)
		return x, nil
	case *Unary:
		inner, err := a.checkExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		if !inner.Type().IsNumeric() {
			return nil, a.errf(x.Pos, "unary operator on non-numeric type %s", inner.Type())
		}
		x.X = inner
		if x.Neg {
			x.SetType(inner.Type())
		} else {
			x.SetType(TypeInt())
		}
		return x, nil
	case *Binary:
		return a.checkBinary(x, sc)
	case *Cond:
		c, err := a.checkExpr(x.C, sc)
		if err != nil {
			return nil, err
		}
		av, err := a.checkExpr(x.A, sc)
		if err != nil {
			return nil, err
		}
		bv, err := a.checkExpr(x.B, sc)
		if err != nil {
			return nil, err
		}
		if !c.Type().IsScalar() {
			return nil, a.errf(x.Pos, "ternary condition must be scalar")
		}
		rt, err := a.commonType(av.Type(), bv.Type(), x.Pos)
		if err != nil {
			return nil, err
		}
		x.C, x.A, x.B = c, a.convertTo(av, rt), a.convertTo(bv, rt)
		x.SetType(rt)
		return x, nil
	case *Index:
		return a.checkIndex(x, sc)
	case *VecLoad:
		base, err := a.checkExpr(x.Base, sc)
		if err != nil {
			return nil, err
		}
		bt := base.Type()
		if !(bt.IsPointer() && bt.Elem.IsScalar() && bt.Elem.Basic == Float) {
			return nil, a.errf(x.Pos, "vector load base must be float*, got %s", bt)
		}
		idx, err := a.checkExpr(x.Idx, sc)
		if err != nil {
			return nil, err
		}
		x.Base, x.Idx = base, a.convertTo(idx, TypeInt())
		x.SetType(TypeVector(a.lanes))
		return x, nil
	case *AssignExpr:
		return a.checkAssign(x, sc)
	case *IncDec:
		inner, err := a.checkExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		if !isLValue(inner) || !inner.Type().IsScalar() {
			return nil, a.errf(x.Pos, "++/-- requires a scalar lvalue")
		}
		x.X = inner
		x.SetType(inner.Type())
		return x, nil
	case *Call:
		rt, ok := builtinFuncs[x.Name]
		if !ok {
			return nil, a.errf(x.Pos, "call to unknown function %s (only OpenMP runtime builtins are supported)", x.Name)
		}
		if len(x.Args) != 0 {
			return nil, a.errf(x.Pos, "%s takes no arguments", x.Name)
		}
		if !a.inTarget {
			return nil, a.errf(x.Pos, "%s may only be called inside a target region", x.Name)
		}
		x.SetType(rt)
		return x, nil
	case *Cast:
		if !x.To.IsScalar() {
			return nil, a.errf(x.Pos, "unsupported cast to %s", x.To)
		}
		inner, err := a.checkExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		if !inner.Type().IsScalar() {
			return nil, a.errf(x.Pos, "cast of non-scalar type %s", inner.Type())
		}
		x.X = inner
		x.SetType(x.To)
		return x, nil
	case *AddrOf:
		return nil, a.errf(x.Pos, "& is only supported inside *((VECTOR*)&a[i])")
	case *InitList:
		return nil, a.errf(x.Pos, "brace initializer is only allowed in a declaration")
	}
	return nil, a.errf(ExprPos(e), "unhandled expression %T", e)
}

func (a *analyzer) checkBinary(x *Binary, sc *scope) (Expr, error) {
	l, err := a.checkExpr(x.L, sc)
	if err != nil {
		return nil, err
	}
	r, err := a.checkExpr(x.R, sc)
	if err != nil {
		return nil, err
	}
	lt, rt := l.Type(), r.Type()
	switch {
	case x.Op.IsLogical():
		if !lt.IsScalar() || !rt.IsScalar() {
			return nil, a.errf(x.Pos, "logical operator requires scalar operands")
		}
		x.L, x.R = l, r
		x.SetType(TypeInt())
		return x, nil
	case x.Op.IsComparison():
		ct, err := a.commonType(lt, rt, x.Pos)
		if err != nil {
			return nil, err
		}
		if !ct.IsScalar() {
			return nil, a.errf(x.Pos, "comparison of non-scalar type %s", ct)
		}
		x.L, x.R = a.convertTo(l, ct), a.convertTo(r, ct)
		x.SetType(TypeInt())
		return x, nil
	default:
		ct, err := a.commonType(lt, rt, x.Pos)
		if err != nil {
			return nil, err
		}
		if x.Op == OpRem && ct.Basic != Int {
			return nil, a.errf(x.Pos, "%% requires integer operands")
		}
		x.L, x.R = a.convertTo(l, ct), a.convertTo(r, ct)
		x.SetType(ct)
		return x, nil
	}
}

// commonType computes the usual arithmetic conversion result of two types.
// Vectors combine with scalars by broadcasting the scalar.
func (a *analyzer) commonType(l, r *Type, p Pos) (*Type, error) {
	switch {
	case l.IsVector() && r.IsVector():
		if l.Lanes != r.Lanes {
			return nil, a.errf(p, "vector lane mismatch: %s vs %s", l, r)
		}
		return l, nil
	case l.IsVector() && r.IsScalar():
		return l, nil
	case r.IsVector() && l.IsScalar():
		return r, nil
	case l.IsScalar() && r.IsScalar():
		if l.Basic == Float || r.Basic == Float {
			return TypeFloat(), nil
		}
		return TypeInt(), nil
	}
	return nil, a.errf(p, "invalid operands: %s and %s", l, r)
}

// checkIndex types a subscript chain. Subscripts first peel array
// dimensions or a pointer, and a final extra subscript on a vector value
// becomes a VecElem lane access.
func (a *analyzer) checkIndex(x *Index, sc *scope) (Expr, error) {
	base, err := a.checkExpr(x.Base, sc)
	if err != nil {
		return nil, err
	}
	var cur Expr = base
	for _, rawIdx := range x.Idx {
		ie, err := a.checkExpr(rawIdx, sc)
		if err != nil {
			return nil, err
		}
		ie = a.convertTo(ie, TypeInt())
		bt := cur.Type()
		switch {
		case bt.IsPointer() || bt.IsArray():
			et := bt.ElemType()
			ix, ok := cur.(*Index)
			if ok {
				// Extend existing index node with one more subscript.
				ix.Idx = append(ix.Idx, ie)
				ix.SetType(et)
				cur = ix
			} else {
				nx := &Index{Base: cur, Idx: []Expr{ie}, Pos: x.Pos}
				nx.SetType(et)
				cur = nx
			}
		case bt.IsVector():
			ve := &VecElem{Vec: cur, Idx: ie, Pos: x.Pos}
			ve.SetType(TypeFloat())
			cur = ve
		default:
			return nil, a.errf(x.Pos, "cannot subscript value of type %s", bt)
		}
	}
	return cur, nil
}

func isLValue(e Expr) bool {
	switch v := e.(type) {
	case *Ident:
		return v.Type().IsScalar() || v.Type().IsVector()
	case *Index:
		t := v.Type()
		return t.IsScalar() || t.IsVector()
	case *VecElem, *VecLoad:
		return true
	}
	return false
}

func (a *analyzer) checkAssign(x *AssignExpr, sc *scope) (Expr, error) {
	lhs, err := a.checkExpr(x.LHS, sc)
	if err != nil {
		return nil, err
	}
	if !isLValue(lhs) {
		return nil, a.errf(x.Pos, "assignment target is not an lvalue")
	}
	rhs, err := a.checkExpr(x.RHS, sc)
	if err != nil {
		return nil, err
	}
	lt := lhs.Type()
	if lt.IsVector() {
		rt := rhs.Type()
		if !(rt.IsVector() && rt.Lanes == lt.Lanes) && !rt.IsScalar() {
			return nil, a.errf(x.Pos, "cannot assign %s to vector", rt)
		}
	} else {
		rhs = a.convertTo(rhs, lt)
		if !rhs.Type().Equal(lt) {
			return nil, a.errf(x.Pos, "cannot assign %s to %s", rhs.Type(), lt)
		}
	}
	x.LHS, x.RHS = lhs, rhs
	x.SetType(lt)
	return x, nil
}

// FindTarget locates the unique target region in the program and the
// function containing it. It returns an error if none exists.
func FindTarget(prog *Program) (*FuncDecl, *TargetStmt, error) {
	for _, f := range prog.Funcs {
		if ts := findTargetInBlock(f.Body); ts != nil {
			return f, ts, nil
		}
	}
	return nil, nil, fmt.Errorf("no #pragma omp target parallel region found")
}

func findTargetInBlock(b *BlockStmt) *TargetStmt {
	for _, s := range b.Stmts {
		switch st := s.(type) {
		case *TargetStmt:
			return st
		case *BlockStmt:
			if ts := findTargetInBlock(st); ts != nil {
				return ts
			}
		case *ForStmt:
			if ts := findTargetInBlock(st.Body); ts != nil {
				return ts
			}
		case *IfStmt:
			if ts := findTargetInBlock(st.Then); ts != nil {
				return ts
			}
			if st.Else != nil {
				if ts := findTargetInBlock(st.Else); ts != nil {
					return ts
				}
			}
		}
	}
	return nil
}
