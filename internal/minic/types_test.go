package minic

import "testing"

func TestTypePredicates(t *testing.T) {
	i := TypeInt()
	f := TypeFloat()
	v := TypeVector(4)
	p := TypePointer(f)
	a := TypeArray(f, 4, 8)

	if !i.IsScalar() || !f.IsScalar() || v.IsScalar() || p.IsScalar() || a.IsScalar() {
		t.Error("IsScalar misclassifies")
	}
	if !v.IsVector() || f.IsVector() {
		t.Error("IsVector misclassifies")
	}
	if !p.IsPointer() || a.IsPointer() {
		t.Error("IsPointer misclassifies")
	}
	if !a.IsArray() || p.IsArray() {
		t.Error("IsArray misclassifies")
	}
	if !i.IsNumeric() || !v.IsNumeric() || p.IsNumeric() {
		t.Error("IsNumeric misclassifies")
	}
	if TypeVoid().IsScalar() {
		t.Error("void is not scalar")
	}
}

func TestTypeElemAndSize(t *testing.T) {
	f := TypeFloat()
	p := TypePointer(f)
	if p.ElemType() != f {
		t.Error("pointer elem")
	}
	a := TypeArray(f, 4, 8)
	inner := a.ElemType()
	if !inner.IsArray() || len(inner.Dims) != 1 || inner.Dims[0] != 8 {
		t.Errorf("array elem = %s", inner)
	}
	if inner.ElemType() != f {
		t.Error("inner array elem")
	}
	if a.ScalarWords() != 32 || a.SizeBytes() != 128 {
		t.Errorf("array size: %d words %d bytes", a.ScalarWords(), a.SizeBytes())
	}
	v := TypeVector(4)
	if v.ScalarWords() != 4 || v.SizeBytes() != 16 {
		t.Errorf("vector size: %d words", v.ScalarWords())
	}
	if TypeVoid().ScalarWords() != 0 {
		t.Error("void words")
	}
	if p.ScalarWords() != 1 {
		t.Error("pointer words")
	}
	av := TypeArray(TypeVector(4), 8)
	if av.ScalarWords() != 32 {
		t.Errorf("vector array words = %d", av.ScalarWords())
	}
	if TypeInt().ElemType() != nil {
		t.Error("scalar has no elem")
	}
}

func TestTypeEqual(t *testing.T) {
	cases := []struct {
		a, b *Type
		eq   bool
	}{
		{TypeInt(), TypeInt(), true},
		{TypeInt(), TypeFloat(), false},
		{TypeVector(4), TypeVector(4), true},
		{TypeVector(4), TypeVector(8), false},
		{TypePointer(TypeFloat()), TypePointer(TypeFloat()), true},
		{TypePointer(TypeFloat()), TypePointer(TypeInt()), false},
		{TypeArray(TypeFloat(), 4), TypeArray(TypeFloat(), 4), true},
		{TypeArray(TypeFloat(), 4), TypeArray(TypeFloat(), 8), false},
		{TypeArray(TypeFloat(), 4, 2), TypeArray(TypeFloat(), 4), false},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.eq {
			t.Errorf("case %d: Equal(%s, %s) = %v", i, c.a, c.b, got)
		}
	}
	var nilT *Type
	if nilT.Equal(TypeInt()) {
		t.Error("nil type equality")
	}
}

func TestTypeStrings2(t *testing.T) {
	cases := map[string]*Type{
		"int":         TypeInt(),
		"float":       TypeFloat(),
		"void":        TypeVoid(),
		"float<4>":    TypeVector(4),
		"float*":      TypePointer(TypeFloat()),
		"float[4][8]": TypeArray(TypeFloat(), 4, 8),
		"float<4>[2]": TypeArray(TypeVector(4), 2),
	}
	for want, typ := range cases {
		if got := typ.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	var nilT *Type
	if nilT.String() != "<nil>" {
		t.Error("nil string")
	}
}

func TestTokenStrings(t *testing.T) {
	tok := Token{Kind: IDENT, Text: "foo", Pos: Pos{Line: 3, Col: 7}}
	if tok.String() != `identifier("foo")` {
		t.Errorf("token string = %s", tok.String())
	}
	pr := Token{Kind: PRAGMA, Text: "omp critical"}
	if pr.String() != `#pragma "omp critical"` {
		t.Errorf("pragma string = %s", pr.String())
	}
	if (Token{Kind: Plus}).String() != "+" {
		t.Error("op token string")
	}
	if (Pos{Line: 3, Col: 7}).String() != "3:7" {
		t.Error("pos string")
	}
}
