package minic

import (
	"fmt"
	"strings"
)

// parsePragmaStmt dispatches on the pragma payload of the current PRAGMA
// token and parses the statement the pragma applies to.
func (p *parser) parsePragmaStmt() (Stmt, error) {
	tok := p.next() // PRAGMA
	fields := strings.Fields(tok.Text)
	if len(fields) == 0 {
		return nil, &ParseError{Pos: tok.Pos, Msg: "empty #pragma"}
	}
	switch fields[0] {
	case "unroll":
		factor := 0
		if len(fields) >= 2 {
			n, err := p.pragmaConstInt(strings.Join(fields[1:], " "), tok.Pos)
			if err != nil {
				return nil, err
			}
			factor = n
		}
		if factor <= 0 {
			return nil, &ParseError{Pos: tok.Pos, Msg: "#pragma unroll requires a positive factor"}
		}
		if !p.at(KwFor) {
			return nil, &ParseError{Pos: tok.Pos, Msg: "#pragma unroll must precede a for loop"}
		}
		return p.parseFor(factor)
	case "omp":
		return p.parseOMPPragma(tok, fields[1:])
	default:
		return nil, &ParseError{Pos: tok.Pos, Msg: "unsupported #pragma " + fields[0]}
	}
}

func (p *parser) parseOMPPragma(tok Token, fields []string) (Stmt, error) {
	if len(fields) == 0 {
		return nil, &ParseError{Pos: tok.Pos, Msg: "bare #pragma omp"}
	}
	switch fields[0] {
	case "critical":
		body, err := p.parseStmtAsBlock()
		if err != nil {
			return nil, err
		}
		return &CriticalStmt{Body: body, Pos: tok.Pos}, nil
	case "barrier":
		return &BarrierStmt{Pos: tok.Pos}, nil
	case "target":
		rest := strings.TrimSpace(strings.TrimPrefix(tok.Text, "omp"))
		rest = strings.TrimSpace(strings.TrimPrefix(rest, "target"))
		if !strings.HasPrefix(rest, "parallel") {
			return nil, &ParseError{Pos: tok.Pos, Msg: "only 'omp target parallel' offload regions are supported"}
		}
		rest = strings.TrimSpace(strings.TrimPrefix(rest, "parallel"))
		ts := &TargetStmt{Pos: tok.Pos}
		if err := p.parseTargetClauses(ts, rest, tok.Pos); err != nil {
			return nil, err
		}
		body, err := p.parseStmtAsBlock()
		if err != nil {
			return nil, err
		}
		ts.Body = body
		return ts, nil
	default:
		return nil, &ParseError{Pos: tok.Pos, Msg: "unsupported #pragma omp " + fields[0]}
	}
}

// parseTargetClauses parses the clause list of a target pragma:
// map(to: A[0:N], B[0:N]) map(from: C[0:N]) num_threads(8).
func (p *parser) parseTargetClauses(ts *TargetStmt, text string, pos Pos) error {
	s := newClauseScanner(text)
	for {
		name, ok := s.ident()
		if !ok {
			if s.done() {
				return nil
			}
			return &ParseError{Pos: pos, Msg: "malformed clause list: " + s.rest()}
		}
		arg, err := s.parenArg()
		if err != nil {
			return &ParseError{Pos: pos, Msg: err.Error()}
		}
		switch name {
		case "map":
			if err := p.parseMapClause(ts, arg, pos); err != nil {
				return err
			}
		case "num_threads":
			n, err := p.pragmaConstInt(arg, pos)
			if err != nil {
				return err
			}
			if n <= 0 {
				return &ParseError{Pos: pos, Msg: "num_threads must be positive"}
			}
			ts.NumThreads = n
		default:
			return &ParseError{Pos: pos, Msg: "unsupported target clause " + name}
		}
	}
}

// parseMapClause parses "to: A[0:N], B[0:N]" or "tofrom: x" etc.
func (p *parser) parseMapClause(ts *TargetStmt, arg string, pos Pos) error {
	colon := strings.Index(arg, ":")
	if colon < 0 {
		return &ParseError{Pos: pos, Msg: "map clause needs a direction: " + arg}
	}
	var dir MapDir
	switch strings.TrimSpace(arg[:colon]) {
	case "to":
		dir = MapTo
	case "from":
		dir = MapFrom
	case "tofrom":
		dir = MapToFrom
	default:
		return &ParseError{Pos: pos, Msg: "unknown map direction " + arg[:colon]}
	}
	for _, item := range splitTopLevel(arg[colon+1:], ',') {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		mc := MapClause{Dir: dir, Pos: pos}
		if lb := strings.Index(item, "["); lb >= 0 {
			mc.Name = strings.TrimSpace(item[:lb])
			inner := strings.TrimSuffix(strings.TrimSpace(item[lb:]), "]")
			inner = strings.TrimPrefix(inner, "[")
			parts := splitTopLevel(inner, ':')
			if len(parts) != 2 {
				return &ParseError{Pos: pos, Msg: "array section must be [low:len]: " + item}
			}
			low, err := p.pragmaExpr(parts[0], pos)
			if err != nil {
				return err
			}
			length, err := p.pragmaExpr(parts[1], pos)
			if err != nil {
				return err
			}
			mc.Low, mc.Len = low, length
		} else {
			mc.Name = item
		}
		ts.Maps = append(ts.Maps, mc)
	}
	return nil
}

// pragmaExpr parses an expression embedded in a pragma (e.g. DIM*DIM) with
// the translation unit's defines in scope.
func (p *parser) pragmaExpr(text string, pos Pos) (Expr, error) {
	toks, err := Lex(text, p.defines)
	if err != nil {
		return nil, &ParseError{Pos: pos, Msg: fmt.Sprintf("in pragma expression %q: %v", text, err)}
	}
	sub := &parser{toks: toks, defines: p.defines, lanes: p.lanes}
	e, err := sub.parseExpr()
	if err != nil {
		return nil, err
	}
	if !sub.at(EOF) {
		return nil, &ParseError{Pos: pos, Msg: "trailing tokens in pragma expression: " + text}
	}
	return e, nil
}

// pragmaConstInt parses a compile-time integer in a pragma.
func (p *parser) pragmaConstInt(text string, pos Pos) (int, error) {
	e, err := p.pragmaExpr(strings.TrimSpace(text), pos)
	if err != nil {
		return 0, err
	}
	v, ok := foldInt(e)
	if !ok {
		return 0, &ParseError{Pos: pos, Msg: "pragma argument is not a constant: " + text}
	}
	return int(v), nil
}

// splitTopLevel splits s on sep, ignoring separators inside parentheses or
// brackets.
func splitTopLevel(s string, sep byte) []string {
	var parts []string
	depth := 0
	last := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case sep:
			if depth == 0 {
				parts = append(parts, s[last:i])
				last = i + 1
			}
		}
	}
	parts = append(parts, s[last:])
	return parts
}

// clauseScanner scans "name(arg) name(arg) ..." clause lists.
type clauseScanner struct {
	s   string
	pos int
}

func newClauseScanner(s string) *clauseScanner { return &clauseScanner{s: s} }

func (c *clauseScanner) skipSpace() {
	for c.pos < len(c.s) && (c.s[c.pos] == ' ' || c.s[c.pos] == '\t') {
		c.pos++
	}
}

func (c *clauseScanner) done() bool {
	c.skipSpace()
	return c.pos >= len(c.s)
}

func (c *clauseScanner) rest() string { return c.s[c.pos:] }

func (c *clauseScanner) ident() (string, bool) {
	c.skipSpace()
	start := c.pos
	for c.pos < len(c.s) {
		ch := c.s[c.pos]
		if ch == '_' || (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || (ch >= '0' && ch <= '9') {
			c.pos++
		} else {
			break
		}
	}
	if c.pos == start {
		return "", false
	}
	return c.s[start:c.pos], true
}

func (c *clauseScanner) parenArg() (string, error) {
	c.skipSpace()
	if c.pos >= len(c.s) || c.s[c.pos] != '(' {
		return "", fmt.Errorf("expected '(' after clause name near %q", c.rest())
	}
	depth := 0
	start := c.pos + 1
	for ; c.pos < len(c.s); c.pos++ {
		switch c.s[c.pos] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				arg := c.s[start:c.pos]
				c.pos++
				return strings.TrimSpace(arg), nil
			}
		}
	}
	return "", fmt.Errorf("unbalanced parentheses in clause near %q", c.s[start:])
}
