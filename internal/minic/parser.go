package minic

import (
	"fmt"
	"strconv"
)

// ParseError describes a syntax error with its source position.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Options configures parsing.
type Options struct {
	// Defines acts like -D command-line macro definitions.
	Defines map[string]string
	// VectorLanes is the lane count of the builtin VECTOR type. If zero,
	// the VECTOR_LEN define is consulted; if that is absent, 4 lanes
	// (a 128-bit vector, as in the paper) are used.
	VectorLanes int
}

// Parse lexes and parses a MiniC translation unit and runs semantic
// analysis on it.
func Parse(src string, opts Options) (*Program, error) {
	toks, allDefines, err := LexWithDefines(src, opts.Defines)
	if err != nil {
		return nil, err
	}
	lanes := opts.VectorLanes
	if lanes == 0 {
		if v, ok := allDefines["VECTOR_LEN"]; ok {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				lanes = n
			}
		}
	}
	if lanes == 0 {
		lanes = 4
	}
	p := &parser{toks: toks, defines: allDefines, lanes: lanes}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if err := Analyze(prog, lanes); err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks    []Token
	pos     int
	defines map[string]string
	lanes   int
	depth   int
}

// maxNestDepth bounds statement/expression nesting so that adversarial
// input (deep parentheses, unary chains, nested blocks) produces a parse
// error instead of exhausting the goroutine stack.
const maxNestDepth = 200

func (p *parser) enterNest() error {
	p.depth++
	if p.depth > maxNestDepth {
		return p.errf("statement or expression nesting exceeds %d levels", maxNestDepth)
	}
	return nil
}

func (p *parser) leaveNest() { p.depth-- }

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k Kind) bool {
	return p.cur().Kind == k
}
func (p *parser) accept(k Kind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}
func (p *parser) expect(k Kind) (Token, error) {
	if !p.at(k) {
		return Token{}, p.errf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}
func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

// --- Top level ---

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for !p.at(EOF) {
		f, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, f)
	}
	return prog, nil
}

// isTypeStart reports whether the current token can begin a type.
func (p *parser) isTypeStart() bool {
	switch p.cur().Kind {
	case KwVoid, KwInt, KwFloat, KwConst:
		return true
	case IDENT:
		return p.cur().Text == "VECTOR"
	}
	return false
}

// parseBaseType parses a base type (with optional const and trailing '*'s).
func (p *parser) parseBaseType() (*Type, error) {
	p.accept(KwConst)
	var t *Type
	switch {
	case p.accept(KwVoid):
		t = TypeVoid()
	case p.accept(KwInt):
		t = TypeInt()
	case p.accept(KwFloat):
		t = TypeFloat()
	case p.at(IDENT) && p.cur().Text == "VECTOR":
		p.next()
		t = TypeVector(p.lanes)
	default:
		return nil, p.errf("expected type, found %s", p.cur())
	}
	for p.accept(Star) {
		t = TypePointer(t)
	}
	return t, nil
}

func (p *parser) parseFunc() (*FuncDecl, error) {
	start := p.cur().Pos
	ret, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	nameTok, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	var params []*Param
	if !p.at(RParen) {
		for {
			pt, err := p.parseBaseType()
			if err != nil {
				return nil, err
			}
			pn, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			params = append(params, &Param{Name: pn.Text, Type: pt, Pos: pn.Pos})
			if !p.accept(Comma) {
				break
			}
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: nameTok.Text, Ret: ret, Params: params, Body: body, Pos: start}, nil
}

// --- Statements ---

func (p *parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: lb.Pos}
	for !p.at(RBrace) {
		if p.at(EOF) {
			return nil, p.errf("unexpected end of file in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			blk.Stmts = append(blk.Stmts, s)
		}
	}
	p.next() // RBrace
	return blk, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	if err := p.enterNest(); err != nil {
		return nil, err
	}
	defer p.leaveNest()
	switch {
	case p.at(PRAGMA):
		return p.parsePragmaStmt()
	case p.at(LBrace):
		return p.parseBlock()
	case p.at(KwFor):
		return p.parseFor(0)
	case p.at(KwIf):
		return p.parseIf()
	case p.at(KwReturn):
		tok := p.next()
		var x Expr
		if !p.at(Semicolon) {
			var err error
			x, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &ReturnStmt{X: x, Pos: tok.Pos}, nil
	case p.accept(Semicolon):
		return nil, nil
	case p.isTypeStart():
		decls, err := p.parseDecls()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		if len(decls) == 1 {
			return decls[0], nil
		}
		blkLike := &BlockStmt{Pos: declPos(decls[0])}
		blkLike.Stmts = decls
		return blkLike, nil
	default:
		tok := p.cur()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &ExprStmt{X: x, Pos: tok.Pos}, nil
	}
}

func declPos(s Stmt) Pos {
	if d, ok := s.(*DeclStmt); ok {
		return d.Pos
	}
	return Pos{}
}

// parseDecls parses `type declarator (',' declarator)*` without consuming
// the trailing semicolon. Each declarator may add array dimensions and an
// initializer.
func (p *parser) parseDecls() ([]Stmt, error) {
	base, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	var out []Stmt
	for {
		nameTok, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		typ := base
		var dims []int
		for p.at(LBracket) {
			p.next()
			dim, err := p.parseConstIntExpr()
			if err != nil {
				return nil, err
			}
			if dim <= 0 {
				return nil, p.errf("array dimension must be positive, got %d", dim)
			}
			dims = append(dims, dim)
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
		}
		if len(dims) > 0 {
			typ = TypeArray(base, dims...)
		}
		var init Expr
		if p.accept(Assign) {
			if p.at(LBrace) {
				init, err = p.parseInitList()
			} else {
				init, err = p.parseAssignExpr()
			}
			if err != nil {
				return nil, err
			}
		}
		out = append(out, &DeclStmt{Name: nameTok.Text, Typ: typ, Init: init, Pos: nameTok.Pos})
		if !p.accept(Comma) {
			return out, nil
		}
	}
}

func (p *parser) parseInitList() (Expr, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	lst := &InitList{Pos: lb.Pos}
	if !p.at(RBrace) {
		for {
			e, err := p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
			lst.Elems = append(lst.Elems, e)
			if !p.accept(Comma) {
				break
			}
		}
	}
	if _, err := p.expect(RBrace); err != nil {
		return nil, err
	}
	return lst, nil
}

// parseConstIntExpr parses an expression and requires it to fold to a
// compile-time integer constant (array dimensions, unroll factors).
func (p *parser) parseConstIntExpr() (int, error) {
	tok := p.cur()
	e, err := p.parseCondExpr()
	if err != nil {
		return 0, err
	}
	v, ok := foldInt(e)
	if !ok {
		return 0, &ParseError{Pos: tok.Pos, Msg: "expression is not a compile-time integer constant"}
	}
	return int(v), nil
}

// foldInt constant-folds an expression to an integer if possible.
func foldInt(e Expr) (int64, bool) {
	switch x := e.(type) {
	case *IntLit:
		return x.Value, true
	case *Unary:
		v, ok := foldInt(x.X)
		if !ok {
			return 0, false
		}
		if x.Neg {
			return -v, true
		}
		if v == 0 {
			return 1, true
		}
		return 0, true
	case *Binary:
		l, ok1 := foldInt(x.L)
		r, ok2 := foldInt(x.R)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case OpAdd:
			return l + r, true
		case OpSub:
			return l - r, true
		case OpMul:
			return l * r, true
		case OpDiv:
			if r == 0 {
				return 0, false
			}
			return l / r, true
		case OpRem:
			if r == 0 {
				return 0, false
			}
			return l % r, true
		}
		return 0, false
	}
	return 0, false
}

func (p *parser) parseFor(unroll int) (Stmt, error) {
	forTok, err := p.expect(KwFor)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	f := &ForStmt{Pos: forTok.Pos, Unroll: unroll}
	// Init clause.
	if !p.at(Semicolon) {
		if p.isTypeStart() {
			decls, err := p.parseDecls()
			if err != nil {
				return nil, err
			}
			f.Init = decls
		} else {
			for {
				tok := p.cur()
				x, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				f.Init = append(f.Init, &ExprStmt{X: x, Pos: tok.Pos})
				if !p.accept(Comma) {
					break
				}
			}
		}
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	// Condition.
	if !p.at(Semicolon) {
		f.Cond, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	// Post clause(s), comma-separated.
	if !p.at(RParen) {
		for {
			tok := p.cur()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.Post = append(f.Post, &ExprStmt{X: x, Pos: tok.Pos})
			if !p.accept(Comma) {
				break
			}
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// parseStmtAsBlock parses a statement and wraps a non-block statement into
// a single-statement block (loop/if bodies).
func (p *parser) parseStmtAsBlock() (*BlockStmt, error) {
	if p.at(LBrace) {
		return p.parseBlock()
	}
	pos := p.cur().Pos
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: pos}
	if s != nil {
		blk.Stmts = append(blk.Stmts, s)
	}
	return blk, nil
}

func (p *parser) parseIf() (Stmt, error) {
	ifTok, err := p.expect(KwIf)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	then, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then, Pos: ifTok.Pos}
	if p.accept(KwElse) {
		st.Else, err = p.parseStmtAsBlock()
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

// --- Expressions ---

func (p *parser) parseExpr() (Expr, error) { return p.parseAssignExpr() }

func (p *parser) parseAssignExpr() (Expr, error) {
	if err := p.enterNest(); err != nil {
		return nil, err
	}
	defer p.leaveNest()
	lhs, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	var compound *BinOp
	switch p.cur().Kind {
	case Assign:
	case PlusAssign:
		op := OpAdd
		compound = &op
	case MinusAssign:
		op := OpSub
		compound = &op
	case StarAssign:
		op := OpMul
		compound = &op
	case SlashAssign:
		op := OpDiv
		compound = &op
	default:
		return lhs, nil
	}
	tok := p.next()
	rhs, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	return &AssignExpr{LHS: lhs, Op: compound, RHS: rhs, Pos: tok.Pos}, nil
}

func (p *parser) parseCondExpr() (Expr, error) {
	c, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.at(Question) {
		return c, nil
	}
	tok := p.next()
	a, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Colon); err != nil {
		return nil, err
	}
	b, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	return &Cond{C: c, A: a, B: b, Pos: tok.Pos}, nil
}

// Binary operator precedence levels, low to high.
var binLevels = [][]struct {
	kind Kind
	op   BinOp
}{
	{{OrOr, OpLOr}},
	{{AndAnd, OpLAnd}},
	{{EqEq, OpEq}, {NotEq, OpNe}},
	{{Lt, OpLt}, {Le, OpLe}, {Gt, OpGt}, {Ge, OpGe}},
	{{Plus, OpAdd}, {Minus, OpSub}},
	{{Star, OpMul}, {Slash, OpDiv}, {Percent, OpRem}},
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, cand := range binLevels[level] {
			if p.at(cand.kind) {
				tok := p.next()
				rhs, err := p.parseBinary(level + 1)
				if err != nil {
					return nil, err
				}
				lhs = &Binary{Op: cand.op, L: lhs, R: rhs, Pos: tok.Pos}
				matched = true
				break
			}
		}
		if !matched {
			return lhs, nil
		}
	}
}

// isCastAhead reports whether the tokens at the current position form
// "( type [*...] )".
func (p *parser) isCastAhead() bool {
	if !p.at(LParen) {
		return false
	}
	i := p.pos + 1
	switch p.toks[i].Kind {
	case KwInt, KwFloat, KwVoid:
	case IDENT:
		if p.toks[i].Text != "VECTOR" {
			return false
		}
	default:
		return false
	}
	i++
	for p.toks[i].Kind == Star {
		i++
	}
	return p.toks[i].Kind == RParen
}

func (p *parser) parseUnary() (Expr, error) {
	if err := p.enterNest(); err != nil {
		return nil, err
	}
	defer p.leaveNest()
	tok := p.cur()
	switch tok.Kind {
	case Minus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Neg: true, X: x, Pos: tok.Pos}, nil
	case Not:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Neg: false, X: x, Pos: tok.Pos}, nil
	case Inc, Dec:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &IncDec{X: x, Inc: tok.Kind == Inc, Pos: tok.Pos}, nil
	case Amp:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &AddrOf{X: x, Pos: tok.Pos}, nil
	case Star:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return foldDeref(x, tok.Pos)
	case LParen:
		if p.isCastAhead() {
			p.next() // (
			to, err := p.parseBaseType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Cast{To: to, X: x, Pos: tok.Pos}, nil
		}
	}
	return p.parsePostfix()
}

// foldDeref turns `*((VECTOR*)&base[idx])` into a VecLoad and rejects other
// dereference forms (MiniC kernels only dereference for vector access).
func foldDeref(x Expr, pos Pos) (Expr, error) {
	cast, ok := x.(*Cast)
	if !ok {
		return nil, &ParseError{Pos: pos, Msg: "unsupported dereference: only *((VECTOR*)&expr[idx]) is allowed"}
	}
	if !cast.To.IsPointer() || !cast.To.Elem.IsVector() {
		return nil, &ParseError{Pos: pos, Msg: fmt.Sprintf("unsupported cast target %s in dereference", cast.To)}
	}
	addr, ok := cast.X.(*AddrOf)
	if !ok {
		return nil, &ParseError{Pos: pos, Msg: "vector cast must apply to &array[index]"}
	}
	idx, ok := addr.X.(*Index)
	if !ok || len(idx.Idx) != 1 {
		return nil, &ParseError{Pos: pos, Msg: "vector cast must apply to a single-subscript &array[index]"}
	}
	vl := &VecLoad{Base: idx.Base, Idx: idx.Idx[0], Pos: pos}
	vl.SetType(cast.To.Elem)
	return vl, nil
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case LBracket:
			idx := x
			var indices []Expr
			for p.at(LBracket) {
				p.next()
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				indices = append(indices, e)
				if _, err := p.expect(RBracket); err != nil {
					return nil, err
				}
			}
			x = &Index{Base: idx, Idx: indices, Pos: p.cur().Pos}
		case Inc, Dec:
			tok := p.next()
			x = &IncDec{X: x, Inc: tok.Kind == Inc, Pos: tok.Pos}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case INTLIT:
		p.next()
		v, err := strconv.ParseInt(tok.Text, 10, 64)
		if err != nil {
			return nil, &ParseError{Pos: tok.Pos, Msg: "bad integer literal: " + tok.Text}
		}
		return &IntLit{Value: v, Pos: tok.Pos}, nil
	case FLOATLIT:
		p.next()
		v, err := strconv.ParseFloat(tok.Text, 64)
		if err != nil {
			return nil, &ParseError{Pos: tok.Pos, Msg: "bad float literal: " + tok.Text}
		}
		return &FloatLit{Value: v, Pos: tok.Pos}, nil
	case IDENT:
		p.next()
		if p.at(LParen) {
			p.next()
			call := &Call{Name: tok.Text, Pos: tok.Pos}
			if !p.at(RParen) {
				for {
					a, err := p.parseAssignExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(Comma) {
						break
					}
				}
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ident{Name: tok.Text, Pos: tok.Pos}, nil
	case LParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errf("unexpected token %s in expression", tok)
}
