package minic

import (
	"fmt"
	"strings"
	"unicode"
)

// LexError describes a lexical error with its source position.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer turns MiniC source text into tokens. It handles line ("//") and
// block ("/* */") comments, object-like "#define NAME value" directives
// (both in-source and injected, as with -D on a C compiler command line),
// and passes "#pragma" lines through as PRAGMA tokens for the parser.
type Lexer struct {
	src     []rune
	pos     int
	line    int
	col     int
	defines map[string]string
	// expansion guard: names currently being expanded (to reject cycles)
	expanding map[string]bool
	pending   []Token // tokens produced by macro expansion
}

// NewLexer creates a lexer over src. The defines map acts like -D command
// line definitions; in-source #define directives are added on top and may
// not redefine an existing name to a different value.
func NewLexer(src string, defines map[string]string) *Lexer {
	d := make(map[string]string, len(defines))
	for k, v := range defines {
		d[k] = v
	}
	return &Lexer{
		src:       []rune(src),
		line:      1,
		col:       1,
		defines:   d,
		expanding: make(map[string]bool),
	}
}

// Lex returns the full token stream, ending with an EOF token.
func Lex(src string, defines map[string]string) ([]Token, error) {
	toks, _, err := LexWithDefines(src, defines)
	return toks, err
}

// LexWithDefines lexes src and also returns the full macro table after
// in-source #define directives have been processed. The parser needs this
// table to expand macros inside pragma clause expressions, which the lexer
// passes through verbatim.
func LexWithDefines(src string, defines map[string]string) ([]Token, map[string]string, error) {
	lx := NewLexer(src, defines)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, lx.defines, nil
		}
	}
}

func (l *Lexer) errf(p Pos, format string, args ...any) error {
	return &LexError{Pos: p, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() rune {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) here() Pos { return Pos{Line: l.line, Col: l.col} }

// skipSpaceAndComments consumes whitespace and comments. It returns an
// error for unterminated block comments.
func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			l.advance()
		case r == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peek2() == '*':
			start := l.here()
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// readDirectiveLine reads the rest of a '#' line, honoring backslash-newline
// continuations (the paper's pragmas use them).
func (l *Lexer) readDirectiveLine() string {
	var b strings.Builder
	for l.pos < len(l.src) {
		r := l.peek()
		if r == '\\' {
			// Possible line continuation.
			save := l.pos
			l.advance()
			for l.pos < len(l.src) && (l.peek() == ' ' || l.peek() == '\t' || l.peek() == '\r') {
				l.advance()
			}
			if l.pos < len(l.src) && l.peek() == '\n' {
				l.advance()
				b.WriteRune(' ')
				continue
			}
			l.pos = save
			b.WriteRune(l.advance())
			continue
		}
		if r == '\n' {
			break
		}
		b.WriteRune(l.advance())
	}
	return strings.TrimSpace(b.String())
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if len(l.pending) > 0 {
		t := l.pending[0]
		l.pending = l.pending[1:]
		return t, nil
	}
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	p := l.here()
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Pos: p}, nil
	}
	r := l.peek()

	switch {
	case r == '#':
		return l.lexDirective(p)
	case unicode.IsLetter(r) || r == '_':
		return l.lexIdent(p)
	case unicode.IsDigit(r) || (r == '.' && unicode.IsDigit(l.peek2())):
		return l.lexNumber(p)
	}
	return l.lexOperator(p)
}

func (l *Lexer) lexDirective(p Pos) (Token, error) {
	l.advance() // '#'
	line := l.readDirectiveLine()
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Token{}, l.errf(p, "empty preprocessor directive")
	}
	switch fields[0] {
	case "pragma":
		payload := strings.TrimSpace(strings.TrimPrefix(line, "pragma"))
		return Token{Kind: PRAGMA, Text: payload, Pos: p}, nil
	case "define":
		if len(fields) < 2 {
			return Token{}, l.errf(p, "#define needs a name")
		}
		name := fields[1]
		if strings.ContainsAny(name, "()") {
			return Token{}, l.errf(p, "function-like macros are not supported: %s", name)
		}
		value := strings.TrimSpace(strings.TrimPrefix(
			strings.TrimSpace(strings.TrimPrefix(line, "define")), name))
		if old, ok := l.defines[name]; ok && old != value && value != "" {
			// Injected -D definitions win silently, matching common
			// compiler behaviour for command-line overrides.
			return l.Next()
		}
		if value == "" {
			value = "1"
		}
		l.defines[name] = value
		return l.Next()
	default:
		return Token{}, l.errf(p, "unsupported preprocessor directive #%s", fields[0])
	}
}

func (l *Lexer) lexIdent(p Pos) (Token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		r := l.peek()
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			l.advance()
		} else {
			break
		}
	}
	name := string(l.src[start:l.pos])
	if kw, ok := keywords[name]; ok {
		return Token{Kind: kw, Text: name, Pos: p}, nil
	}
	if val, ok := l.defines[name]; ok {
		if err := l.expandMacro(name, val, p); err != nil {
			return Token{}, err
		}
		return l.Next()
	}
	return Token{Kind: IDENT, Text: name, Pos: p}, nil
}

// expandMacro lexes the replacement text of an object-like macro and
// prepends the resulting tokens to the pending queue.
func (l *Lexer) expandMacro(name, val string, p Pos) error {
	if l.expanding[name] {
		return l.errf(p, "recursive macro expansion of %q", name)
	}
	if len(l.expanding) >= 64 {
		return l.errf(p, "macro expansion nesting exceeds 64 levels at %q", name)
	}
	l.expanding[name] = true
	defer delete(l.expanding, name)
	sub := NewLexer(val, l.defines)
	sub.expanding = l.expanding
	var toks []Token
	for {
		t, err := sub.Next()
		if err != nil {
			return l.errf(p, "in expansion of %q: %v", name, err)
		}
		if t.Kind == EOF {
			break
		}
		t.Pos = p
		toks = append(toks, t)
	}
	l.pending = append(toks, l.pending...)
	return nil
}

func (l *Lexer) lexNumber(p Pos) (Token, error) {
	start := l.pos
	isFloat := false
	for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
		l.advance()
	}
	if l.pos < len(l.src) && l.peek() == '.' {
		isFloat = true
		l.advance()
		for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
			l.advance()
		}
	}
	if l.pos < len(l.src) && (l.peek() == 'e' || l.peek() == 'E') {
		save := l.pos
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if unicode.IsDigit(l.peek()) {
			isFloat = true
			for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
				l.advance()
			}
		} else {
			l.pos = save
		}
	}
	text := string(l.src[start:l.pos])
	if l.pos < len(l.src) && (l.peek() == 'f' || l.peek() == 'F') {
		l.advance() // float suffix, e.g. 0.5f
		isFloat = true
	}
	if isFloat {
		return Token{Kind: FLOATLIT, Text: text, Pos: p}, nil
	}
	return Token{Kind: INTLIT, Text: text, Pos: p}, nil
}

func (l *Lexer) lexOperator(p Pos) (Token, error) {
	r := l.advance()
	two := func(next rune, k2, k1 Kind) Token {
		if l.peek() == next {
			l.advance()
			return Token{Kind: k2, Pos: p}
		}
		return Token{Kind: k1, Pos: p}
	}
	switch r {
	case '(':
		return Token{Kind: LParen, Pos: p}, nil
	case ')':
		return Token{Kind: RParen, Pos: p}, nil
	case '{':
		return Token{Kind: LBrace, Pos: p}, nil
	case '}':
		return Token{Kind: RBrace, Pos: p}, nil
	case '[':
		return Token{Kind: LBracket, Pos: p}, nil
	case ']':
		return Token{Kind: RBracket, Pos: p}, nil
	case ',':
		return Token{Kind: Comma, Pos: p}, nil
	case ';':
		return Token{Kind: Semicolon, Pos: p}, nil
	case ':':
		return Token{Kind: Colon, Pos: p}, nil
	case '?':
		return Token{Kind: Question, Pos: p}, nil
	case '+':
		if l.peek() == '+' {
			l.advance()
			return Token{Kind: Inc, Pos: p}, nil
		}
		return two('=', PlusAssign, Plus), nil
	case '-':
		if l.peek() == '-' {
			l.advance()
			return Token{Kind: Dec, Pos: p}, nil
		}
		return two('=', MinusAssign, Minus), nil
	case '*':
		return two('=', StarAssign, Star), nil
	case '/':
		return two('=', SlashAssign, Slash), nil
	case '%':
		return Token{Kind: Percent, Pos: p}, nil
	case '=':
		return two('=', EqEq, Assign), nil
	case '<':
		return two('=', Le, Lt), nil
	case '>':
		return two('=', Ge, Gt), nil
	case '!':
		return two('=', NotEq, Not), nil
	case '&':
		return two('&', AndAnd, Amp), nil
	case '|':
		if l.peek() == '|' {
			l.advance()
			return Token{Kind: OrOr, Pos: p}, nil
		}
		return Token{}, l.errf(p, "bitwise '|' is not supported")
	}
	return Token{}, l.errf(p, "unexpected character %q", r)
}
