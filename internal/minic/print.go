// AST printer: renders a parsed (and possibly transformed) program back
// to MiniC source that re-parses to the same tree. The printer is the
// foundation of internal/transform's source-to-source passes: a pass
// mutates the AST and prints it, and the result goes back through the
// ordinary Parse → vet → lower flow like any hand-written kernel.
//
// The output is canonical: two-space indents, one statement per line,
// minimal parentheses (reinserted only where precedence demands them),
// vector types spelled VECTOR and vector loads spelled in the one
// accepted dereference form *((VECTOR*)&arr[idx]). Because the form is
// canonical, Print is a fixpoint: Print(Parse(Print(p))) == Print(p),
// which the transform round-trip tests rely on for byte-stable output.
//
// Printing happens after define expansion, so the emitted source is
// self-contained: macros are gone, unroll factors and map sections are
// literal expressions, and only kernel parameters remain symbolic.
package minic

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders the whole program as canonical MiniC source.
func Print(p *Program) string {
	var b printer
	for i, f := range p.Funcs {
		if i > 0 {
			b.raw("\n")
		}
		b.fun(f)
	}
	return b.sb.String()
}

// PrintExpr renders a single expression in the printer's canonical form.
// Two expressions are structurally equal exactly when their printed forms
// match, which the transform matchers use as their equality oracle.
func PrintExpr(e Expr) string {
	var b printer
	b.expr(e, precNone)
	return b.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (b *printer) raw(s string)  { b.sb.WriteString(s) }
func (b *printer) line(s string) { b.pad(); b.raw(s); b.raw("\n") }
func (b *printer) pad() {
	for i := 0; i < b.indent; i++ {
		b.raw("  ")
	}
}

// typeName renders the base (element) name of a type: the part that goes
// before the declarator. Vector types print as the VECTOR keyword
// regardless of lane count — the reader supplies lanes via Options.
func typeName(t *Type) string {
	switch {
	case t == nil:
		return "void"
	case t.IsPointer():
		return typeName(t.Elem) + " *"
	case t.IsArray():
		return typeName(t.Elem)
	case t.IsVector():
		return "VECTOR"
	case t.Basic == Int:
		return "int"
	case t.Basic == Float:
		return "float"
	}
	return "void"
}

func declString(name string, t *Type) string {
	s := typeName(t)
	if !strings.HasSuffix(s, "*") {
		s += " "
	}
	s += name
	if t != nil && t.IsArray() {
		for _, d := range t.Dims {
			s += fmt.Sprintf("[%d]", d)
		}
	}
	return s
}

func (b *printer) fun(f *FuncDecl) {
	var ps []string
	for _, p := range f.Params {
		ps = append(ps, declString(p.Name, p.Type))
	}
	b.line(fmt.Sprintf("%s(%s) {", declString(f.Name, f.Ret), strings.Join(ps, ", ")))
	b.indent++
	for _, s := range f.Body.Stmts {
		b.stmt(s)
	}
	b.indent--
	b.line("}")
}

func (b *printer) stmt(s Stmt) {
	switch st := s.(type) {
	case *BlockStmt:
		b.line("{")
		b.indent++
		for _, in := range st.Stmts {
			b.stmt(in)
		}
		b.indent--
		b.line("}")
	case *DeclStmt:
		d := declString(st.Name, st.Typ)
		if st.Init != nil {
			d += " = " + PrintExpr(st.Init)
		}
		b.line(d + ";")
	case *ExprStmt:
		b.line(PrintExpr(st.X) + ";")
	case *ReturnStmt:
		if st.X != nil {
			b.line("return " + PrintExpr(st.X) + ";")
		} else {
			b.line("return;")
		}
	case *ForStmt:
		if st.Unroll > 0 {
			b.line(fmt.Sprintf("#pragma unroll %d", st.Unroll))
		}
		var inits []string
		for _, in := range st.Init {
			inits = append(inits, b.forClause(in))
		}
		cond := ""
		if st.Cond != nil {
			cond = PrintExpr(st.Cond)
		}
		var posts []string
		for _, ps := range st.Post {
			posts = append(posts, b.forClause(ps))
		}
		b.line(fmt.Sprintf("for (%s; %s; %s) {",
			strings.Join(inits, ", "), cond, strings.Join(posts, ", ")))
		b.indent++
		for _, in := range st.Body.Stmts {
			b.stmt(in)
		}
		b.indent--
		b.line("}")
	case *IfStmt:
		b.line("if (" + PrintExpr(st.Cond) + ") {")
		b.indent++
		for _, in := range st.Then.Stmts {
			b.stmt(in)
		}
		b.indent--
		if st.Else != nil {
			b.line("} else {")
			b.indent++
			for _, in := range st.Else.Stmts {
				b.stmt(in)
			}
			b.indent--
		}
		b.line("}")
	case *CriticalStmt:
		b.line("#pragma omp critical")
		b.stmt(st.Body)
	case *BarrierStmt:
		b.line("#pragma omp barrier")
	case *TargetStmt:
		b.line("#pragma omp target parallel " + targetClauses(st))
		b.stmt(st.Body)
	default:
		b.line(fmt.Sprintf("/* unprintable %T */", s))
	}
}

// forClause renders a for-header init/post entry without the trailing
// semicolon (declarations and expressions both appear there).
func (b *printer) forClause(s Stmt) string {
	switch st := s.(type) {
	case *DeclStmt:
		d := declString(st.Name, st.Typ)
		if st.Init != nil {
			d += " = " + PrintExpr(st.Init)
		}
		return d
	case *ExprStmt:
		return PrintExpr(st.X)
	}
	return fmt.Sprintf("/* unprintable %T */", s)
}

func targetClauses(st *TargetStmt) string {
	var parts []string
	// Consecutive clauses of one direction collapse into a single map()
	// group, matching the hand-written sources' style.
	for i := 0; i < len(st.Maps); {
		j := i
		var items []string
		for j < len(st.Maps) && st.Maps[j].Dir == st.Maps[i].Dir {
			mc := st.Maps[j]
			item := mc.Name
			if mc.Low != nil || mc.Len != nil {
				item += "[" + PrintExpr(mc.Low) + ":" + PrintExpr(mc.Len) + "]"
			}
			items = append(items, item)
			j++
		}
		parts = append(parts, fmt.Sprintf("map(%s: %s)", st.Maps[i].Dir, strings.Join(items, ", ")))
		i = j
	}
	if st.NumThreads > 0 {
		parts = append(parts, fmt.Sprintf("num_threads(%d)", st.NumThreads))
	}
	return strings.Join(parts, " ")
}

// Operator precedence tiers for minimal re-parenthesization. Higher binds
// tighter; a subexpression is parenthesized when its own precedence is
// lower than its context's.
const (
	precNone    = 0
	precAssign  = 1
	precCond    = 2
	precLOr     = 3
	precLAnd    = 4
	precEq      = 5
	precRel     = 6
	precAdd     = 7
	precMul     = 8
	precUnary   = 9
	precPostfix = 10
)

func binPrec(op BinOp) int {
	switch op {
	case OpMul, OpDiv, OpRem:
		return precMul
	case OpAdd, OpSub:
		return precAdd
	case OpLt, OpLe, OpGt, OpGe:
		return precRel
	case OpEq, OpNe:
		return precEq
	case OpLAnd:
		return precLAnd
	case OpLOr:
		return precLOr
	}
	return precNone
}

func (b *printer) expr(e Expr, ctx int) {
	switch x := e.(type) {
	case *Ident:
		b.raw(x.Name)
	case *IntLit:
		b.raw(strconv.FormatInt(x.Value, 10))
	case *FloatLit:
		b.raw(floatLit(x.Value))
	case *Binary:
		p := binPrec(x.Op)
		b.paren(p < ctx, func() {
			b.expr(x.L, p)
			b.raw(" " + x.Op.String() + " ")
			b.expr(x.R, p+1)
		})
	case *Unary:
		b.paren(precUnary < ctx, func() {
			if x.Neg {
				b.raw("-")
			} else {
				b.raw("!")
			}
			b.expr(x.X, precUnary)
		})
	case *Cond:
		b.paren(precCond < ctx, func() {
			b.expr(x.C, precCond+1)
			b.raw(" ? ")
			b.expr(x.A, precCond)
			b.raw(" : ")
			b.expr(x.B, precCond)
		})
	case *AssignExpr:
		b.paren(precAssign < ctx, func() {
			b.expr(x.LHS, precPostfix)
			if x.Op != nil {
				b.raw(" " + x.Op.String() + "= ")
			} else {
				b.raw(" = ")
			}
			b.expr(x.RHS, precAssign)
		})
	case *IncDec:
		b.paren(precUnary < ctx, func() {
			if x.Inc {
				b.raw("++")
			} else {
				b.raw("--")
			}
			b.expr(x.X, precUnary)
		})
	case *Index:
		b.paren(precPostfix < ctx, func() {
			b.expr(x.Base, precPostfix)
			for _, i := range x.Idx {
				b.raw("[")
				b.expr(i, precNone)
				b.raw("]")
			}
		})
	case *VecElem:
		b.paren(precPostfix < ctx, func() {
			b.expr(x.Vec, precPostfix)
			b.raw("[")
			b.expr(x.Idx, precNone)
			b.raw("]")
		})
	case *VecLoad:
		// The single dereference form the parser folds back to a VecLoad.
		b.raw("*((VECTOR*)&")
		b.expr(x.Base, precPostfix)
		b.raw("[")
		b.expr(x.Idx, precNone)
		b.raw("])")
	case *Call:
		b.raw(x.Name + "(")
		for i, a := range x.Args {
			if i > 0 {
				b.raw(", ")
			}
			b.expr(a, precAssign)
		}
		b.raw(")")
	case *Cast:
		b.paren(precUnary < ctx, func() {
			b.raw("(" + strings.TrimRight(typeName(x.To), " ") + ")")
			b.expr(x.X, precUnary)
		})
	case *AddrOf:
		b.paren(precUnary < ctx, func() {
			b.raw("&")
			b.expr(x.X, precUnary)
		})
	case *InitList:
		b.raw("{")
		for i, el := range x.Elems {
			if i > 0 {
				b.raw(", ")
			}
			b.expr(el, precAssign)
		}
		b.raw("}")
	default:
		b.raw(fmt.Sprintf("/* unprintable %T */", e))
	}
}

func (b *printer) paren(need bool, body func()) {
	if need {
		b.raw("(")
	}
	body()
	if need {
		b.raw(")")
	}
}

// floatLit renders a float literal so it re-lexes as a float: a decimal
// point is forced when the shortest form has neither '.' nor an exponent,
// and the 'f' suffix marks single precision as in the hand-written
// kernels ("4f" alone would not lex).
func floatLit(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s + "f"
}
