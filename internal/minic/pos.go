package minic

// ExprPos returns the source position of an expression node, or the zero
// Pos for synthesized nodes that carry none (e.g. implicit conversions
// inherit the position of their operand).
func ExprPos(e Expr) Pos {
	switch x := e.(type) {
	case *Ident:
		return x.Pos
	case *IntLit:
		return x.Pos
	case *FloatLit:
		return x.Pos
	case *Binary:
		return x.Pos
	case *Unary:
		return x.Pos
	case *Cond:
		return x.Pos
	case *Index:
		return x.Pos
	case *VecElem:
		return x.Pos
	case *VecLoad:
		return x.Pos
	case *AssignExpr:
		return x.Pos
	case *IncDec:
		return x.Pos
	case *Call:
		return x.Pos
	case *Cast:
		if x.Pos != (Pos{}) {
			return x.Pos
		}
		return ExprPos(x.X)
	case *AddrOf:
		return x.Pos
	case *InitList:
		return x.Pos
	}
	return Pos{}
}

// StmtPos returns the source position of a statement node.
func StmtPos(s Stmt) Pos {
	switch st := s.(type) {
	case *BlockStmt:
		return st.Pos
	case *DeclStmt:
		return st.Pos
	case *ExprStmt:
		return st.Pos
	case *ForStmt:
		return st.Pos
	case *IfStmt:
		return st.Pos
	case *ReturnStmt:
		return st.Pos
	case *CriticalStmt:
		return st.Pos
	case *BarrierStmt:
		return st.Pos
	case *TargetStmt:
		return st.Pos
	}
	return Pos{}
}
