package minic

import (
	"strings"
	"testing"
	"testing/quick"
)

func lexAll(t *testing.T, src string, defines map[string]string) []Token {
	t.Helper()
	toks, err := Lex(src, defines)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	return toks
}

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks := lexAll(t, "int x = 42;", nil)
	want := []Kind{KwInt, IDENT, Assign, INTLIT, Semicolon, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
	if toks[1].Text != "x" || toks[3].Text != "42" {
		t.Errorf("unexpected token texts: %v", toks)
	}
}

func TestLexOperators(t *testing.T) {
	cases := map[string]Kind{
		"+": Plus, "-": Minus, "*": Star, "/": Slash, "%": Percent,
		"+=": PlusAssign, "-=": MinusAssign, "*=": StarAssign, "/=": SlashAssign,
		"++": Inc, "--": Dec, "<": Lt, "<=": Le, ">": Gt, ">=": Ge,
		"==": EqEq, "!=": NotEq, "!": Not, "&&": AndAnd, "||": OrOr, "&": Amp,
		"?": Question, ":": Colon,
	}
	for src, want := range cases {
		toks := lexAll(t, src, nil)
		if toks[0].Kind != want {
			t.Errorf("lex %q: got %s, want %s", src, toks[0].Kind, want)
		}
	}
}

func TestLexFloatLiterals(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"0.5f", "0.5"},
		{"4.0f", "4.0"},
		{"1.0", "1.0"},
		{"2e3", "2e3"},
		{"1.5e-2", "1.5e-2"},
	}
	for _, c := range cases {
		toks := lexAll(t, c.src, nil)
		if toks[0].Kind != FLOATLIT {
			t.Errorf("lex %q: got kind %s, want FLOATLIT", c.src, toks[0].Kind)
			continue
		}
		if toks[0].Text != c.want {
			t.Errorf("lex %q: got text %q, want %q", c.src, toks[0].Text, c.want)
		}
	}
	// Plain integers must stay integers.
	toks := lexAll(t, "17", nil)
	if toks[0].Kind != INTLIT {
		t.Errorf("lex 17: got %s, want INTLIT", toks[0].Kind)
	}
}

func TestLexComments(t *testing.T) {
	src := `
// a line comment
int /* inline */ x; /* multi
line */ float y;
`
	toks := lexAll(t, src, nil)
	want := []Kind{KwInt, IDENT, Semicolon, KwFloat, IDENT, Semicolon, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s want %s", i, got[i], want[i])
		}
	}
}

func TestLexUnterminatedBlockComment(t *testing.T) {
	if _, err := Lex("int x; /* oops", nil); err == nil {
		t.Fatal("expected error for unterminated block comment")
	}
}

func TestLexDefineExpansion(t *testing.T) {
	src := "#define DIM 64\nint x = DIM;"
	toks := lexAll(t, src, nil)
	if toks[3].Kind != INTLIT || toks[3].Text != "64" {
		t.Fatalf("macro not expanded: %v", toks)
	}
}

func TestLexInjectedDefines(t *testing.T) {
	toks := lexAll(t, "int x = SIZE;", map[string]string{"SIZE": "128"})
	if toks[3].Kind != INTLIT || toks[3].Text != "128" {
		t.Fatalf("injected define not expanded: %v", toks)
	}
}

func TestLexDefineToKeyword(t *testing.T) {
	// The paper's kernels use `#define DTYPE float`.
	toks := lexAll(t, "#define DTYPE float\nDTYPE x;", nil)
	if toks[0].Kind != KwFloat {
		t.Fatalf("DTYPE should expand to float keyword, got %v", toks[0])
	}
}

func TestLexDefineExpression(t *testing.T) {
	toks := lexAll(t, "#define N (4*2)\nint x = N;", nil)
	got := kinds(toks)
	want := []Kind{KwInt, IDENT, Assign, LParen, INTLIT, Star, INTLIT, RParen, Semicolon, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s want %s", i, got[i], want[i])
		}
	}
}

func TestLexRecursiveMacro(t *testing.T) {
	if _, err := Lex("#define A B\n#define B A\nint x = A;", nil); err == nil {
		t.Fatal("expected recursive macro error")
	}
}

func TestLexPragmaLine(t *testing.T) {
	toks := lexAll(t, "#pragma omp critical\nint x;", nil)
	if toks[0].Kind != PRAGMA || toks[0].Text != "omp critical" {
		t.Fatalf("got %v", toks[0])
	}
}

func TestLexPragmaLineContinuation(t *testing.T) {
	src := "#pragma omp target parallel map(from:C[0:4])\\\n  map(to:A[0:4]) num_threads(8)\nint x;"
	toks := lexAll(t, src, nil)
	if toks[0].Kind != PRAGMA {
		t.Fatalf("got %v", toks[0])
	}
	if !strings.Contains(toks[0].Text, "map(to:A[0:4])") {
		t.Fatalf("continuation not joined: %q", toks[0].Text)
	}
	if toks[1].Kind != KwInt {
		t.Fatalf("token after pragma: %v", toks[1])
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexAll(t, "int\n  x;", nil)
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("int at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("x at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexErrorsOnUnsupportedChars(t *testing.T) {
	for _, src := range []string{"@", "$", "int x = a | b;", "#include <x>"} {
		if _, err := Lex(src, nil); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

// TestLexIdentifierRoundTrip property: any valid identifier-shaped string
// lexes to a single IDENT token with identical text (unless it collides
// with a keyword).
func TestLexIdentifierRoundTrip(t *testing.T) {
	letters := "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
	digits := "0123456789"
	f := func(seed uint64, length uint8) bool {
		n := int(length%24) + 1
		name := make([]byte, n)
		s := seed
		for i := range name {
			s = s*6364136223846793005 + 1442695040888963407
			if i == 0 {
				name[i] = letters[int(s>>33)%len(letters)]
			} else {
				all := letters + digits
				name[i] = all[int(s>>33)%len(all)]
			}
		}
		text := string(name)
		if _, isKw := keywords[text]; isKw {
			return true
		}
		toks, err := Lex(text, nil)
		if err != nil || len(toks) != 2 {
			return false
		}
		return toks[0].Kind == IDENT && toks[0].Text == text && toks[1].Kind == EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLexIntRoundTrip property: any non-negative int literal round-trips.
func TestLexIntRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		text := uintToString(uint64(v))
		toks, err := Lex(text, nil)
		if err != nil || len(toks) != 2 {
			return false
		}
		return toks[0].Kind == INTLIT && toks[0].Text == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func uintToString(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
