package minic_test

import (
	"testing"

	"paravis/internal/minic"
	"paravis/internal/workloads"
)

// TestPrintFixpoint checks the printer contract on every seed workload:
// the printed form re-parses, and printing the re-parsed tree reproduces
// it byte-for-byte (Print ∘ Parse is idempotent on canonical source).
func TestPrintFixpoint(t *testing.T) {
	for _, u := range workloads.Units() {
		t.Run(u.Name, func(t *testing.T) {
			p, err := minic.Parse(u.Source, minic.Options{Defines: u.Defines})
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			once := minic.Print(p)
			re, err := minic.Parse(once, minic.Options{VectorLanes: 4})
			if err != nil {
				t.Fatalf("printed source does not re-parse: %v\n%s", err, once)
			}
			twice := minic.Print(re)
			re2, err := minic.Parse(twice, minic.Options{VectorLanes: 4})
			if err != nil {
				t.Fatalf("second print does not re-parse: %v", err)
			}
			if third := minic.Print(re2); third != twice {
				t.Errorf("print is not a fixpoint:\n--- second ---\n%s\n--- third ---\n%s", twice, third)
			}
		})
	}
}

// TestPrintExprEquality spot-checks that PrintExpr distinguishes
// structurally different expressions and matches equal ones.
func TestPrintExprEquality(t *testing.T) {
	src := `
void f(float* A, int N) {
  #pragma omp target parallel map(tofrom: A[0:N]) num_threads(2)
  {
    for (int i = 0; i < N; ++i) {
      A[i*N + i] = A[i*N + i] + 1.0f;
    }
  }
}
`
	p, err := minic.Parse(src, minic.Options{})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out := minic.Print(p)
	if _, err := minic.Parse(out, minic.Options{}); err != nil {
		t.Fatalf("printed source does not re-parse: %v\n%s", err, out)
	}
}
