package ir

import "fmt"

// Validate checks the structural invariants of a kernel:
//
//   - params, maps and locals are mutually consistent (no duplicate
//     parameter names, every map backed by a parameter, local array
//     metadata well-formed);
//   - node IDs are unique kernel-wide and graph IDs unique per kernel;
//   - every graph's nodes are in topological order (args, effect deps and
//     predicates refer to earlier nodes in the same graph — SSA-ish
//     def-before-use);
//   - live-in and carry indices are in range;
//   - carry updates exist for every carried register and are kind-correct;
//   - memory ops carry an ArrayRef with a width consistent with the value
//     kind and lane count;
//   - LoopOp argument counts match the body graph's live-in + carry
//     counts, loop bodies have an exit condition, and Graph.Loops mirrors
//     the LoopOp nodes;
//   - value and result kinds of operands are consistent with each
//     operation.
//
// The lowering pass must produce kernels that validate; the scheduler and
// simulator rely on these invariants.
func Validate(k *Kernel) error {
	if k.Top == nil {
		return fmt.Errorf("ir: kernel %s has no top-level graph", k.Name)
	}
	if k.NumThreads <= 0 {
		return fmt.Errorf("ir: kernel %s has NumThreads=%d", k.Name, k.NumThreads)
	}
	if err := validateDecls(k); err != nil {
		return fmt.Errorf("ir: kernel %s: %w", k.Name, err)
	}
	graphIDs := map[int]bool{}
	nodeIDs := map[int]*Graph{}
	for _, g := range k.CollectGraphs() {
		if graphIDs[g.ID] {
			return fmt.Errorf("ir: kernel %s: duplicate graph id #%d", k.Name, g.ID)
		}
		graphIDs[g.ID] = true
		for _, n := range g.Nodes {
			if n == nil {
				continue // reported by validateGraph with an index
			}
			if other, dup := nodeIDs[n.ID]; dup {
				return fmt.Errorf("ir: kernel %s: node id n%d used in both graph #%d and graph #%d",
					k.Name, n.ID, other.ID, g.ID)
			}
			nodeIDs[n.ID] = g
		}
	}
	for _, g := range k.CollectGraphs() {
		if err := validateGraph(k, g); err != nil {
			return fmt.Errorf("ir: kernel %s graph %s(#%d): %w", k.Name, g.Name, g.ID, err)
		}
	}
	return nil
}

// validateDecls checks the kernel's parameter/map/local declarations.
func validateDecls(k *Kernel) error {
	params := map[string]Param{}
	for _, p := range k.Params {
		if p.Name == "" {
			return fmt.Errorf("parameter without a name")
		}
		if _, dup := params[p.Name]; dup {
			return fmt.Errorf("duplicate parameter %q", p.Name)
		}
		params[p.Name] = p
	}
	seenMap := map[string]bool{}
	for _, m := range k.Maps {
		if seenMap[m.Name] {
			return fmt.Errorf("variable %q mapped twice", m.Name)
		}
		seenMap[m.Name] = true
		p, ok := params[m.Name]
		if !ok {
			return fmt.Errorf("map %q has no backing parameter", m.Name)
		}
		// Arrays and writable scalars live behind pointers; only to-mapped
		// (firstprivate) scalars are passed by value.
		if !m.Scalar && !p.Pointer {
			return fmt.Errorf("array map %q backed by non-pointer parameter", m.Name)
		}
		if m.Scalar && m.Dir != MapTo && !p.Pointer {
			return fmt.Errorf("writable scalar map %q backed by non-pointer parameter", m.Name)
		}
	}
	for i, l := range k.Locals {
		if l.ID != i {
			return fmt.Errorf("local array %q has ID %d at index %d", l.Name, l.ID, i)
		}
		if l.NumElems <= 0 || l.ElemWords <= 0 {
			return fmt.Errorf("local array %q has elems=%d words/elem=%d", l.Name, l.NumElems, l.ElemWords)
		}
	}
	return nil
}

func validateGraph(k *Kernel, g *Graph) error {
	pos := make(map[*Node]int, len(g.Nodes))
	for i, n := range g.Nodes {
		if n == nil {
			return fmt.Errorf("node %d is nil", i)
		}
		if _, dup := pos[n]; dup {
			return fmt.Errorf("node n%d appears twice", n.ID)
		}
		pos[n] = i
	}
	before := func(user *Node, dep *Node) error {
		di, ok := pos[dep]
		if !ok {
			return fmt.Errorf("n%d references node n%d outside this graph", user.ID, dep.ID)
		}
		if di >= pos[user] {
			return fmt.Errorf("n%d references later node n%d (not topological)", user.ID, dep.ID)
		}
		return nil
	}
	for _, n := range g.Nodes {
		for _, a := range n.Args {
			if err := before(n, a); err != nil {
				return err
			}
		}
		for _, d := range n.EffectDeps {
			if err := before(n, d); err != nil {
				return err
			}
		}
		if n.Pred != nil {
			if err := before(n, n.Pred); err != nil {
				return err
			}
			if n.Pred.Kind != KindInt {
				return fmt.Errorf("n%d predicate must be int, got %s", n.ID, n.Pred.Kind)
			}
		}
		if err := validateNode(k, g, n); err != nil {
			return err
		}
	}
	if g.Cond != nil {
		if _, ok := pos[g.Cond]; !ok {
			return fmt.Errorf("cond node n%d not in graph", g.Cond.ID)
		}
		if g.Cond.Kind != KindInt {
			return fmt.Errorf("cond node n%d must be int, got %s", g.Cond.ID, g.Cond.Kind)
		}
	}
	if len(g.CarryUpdate) != g.NumCarry {
		return fmt.Errorf("carry updates %d != carried registers %d", len(g.CarryUpdate), g.NumCarry)
	}
	for i, u := range g.CarryUpdate {
		if u == nil {
			return fmt.Errorf("carry %d has no update", i)
		}
		if _, ok := pos[u]; !ok {
			return fmt.Errorf("carry %d update n%d not in graph", i, u.ID)
		}
	}
	// Carried-register reads must agree with the value that updates them.
	for _, n := range g.Nodes {
		if n.Op != OpCarry {
			continue
		}
		u := g.CarryUpdate[n.Idx]
		if u.Kind != n.Kind {
			return fmt.Errorf("carry %d read as %s but updated with %s (n%d)", n.Idx, n.Kind, u.Kind, u.ID)
		}
	}
	// Graph.Loops must mirror exactly the LoopOp nodes of the graph.
	inLoops := make(map[*Node]bool, len(g.Loops))
	for _, lp := range g.Loops {
		if lp == nil || lp.Op != OpLoopOp {
			return fmt.Errorf("Loops list contains a non-loop node")
		}
		if _, ok := pos[lp]; !ok {
			return fmt.Errorf("Loops list references n%d outside this graph", lp.ID)
		}
		if inLoops[lp] {
			return fmt.Errorf("loop n%d listed twice in Loops", lp.ID)
		}
		inLoops[lp] = true
	}
	for _, n := range g.Nodes {
		if n.Op == OpLoopOp && !inLoops[n] {
			return fmt.Errorf("loop n%d missing from Loops list", n.ID)
		}
	}
	return nil
}

func wantArgs(n *Node, want int) error {
	if len(n.Args) != want {
		return fmt.Errorf("n%d %s has %d args, want %d", n.ID, n.Op, len(n.Args), want)
	}
	return nil
}

func validateNode(k *Kernel, g *Graph, n *Node) error {
	switch n.Op {
	case OpConstInt:
		return wantArgs(n, 0)
	case OpConstFloat:
		return wantArgs(n, 0)
	case OpParam:
		if n.Name == "" {
			return fmt.Errorf("n%d param without name", n.ID)
		}
		return wantArgs(n, 0)
	case OpThreadID, OpNumThreads:
		return wantArgs(n, 0)
	case OpLiveIn:
		if n.Idx < 0 || n.Idx >= g.NumLiveIn {
			return fmt.Errorf("n%d live-in index %d out of range [0,%d)", n.ID, n.Idx, g.NumLiveIn)
		}
		return wantArgs(n, 0)
	case OpCarry:
		if n.Idx < 0 || n.Idx >= g.NumCarry {
			return fmt.Errorf("n%d carry index %d out of range [0,%d)", n.ID, n.Idx, g.NumCarry)
		}
		return wantArgs(n, 0)
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpLt, OpLe, OpGt, OpGe,
		OpEq, OpNe, OpAnd, OpOr:
		if err := wantArgs(n, 2); err != nil {
			return err
		}
		if n.Args[0].Kind != n.Args[1].Kind {
			return fmt.Errorf("n%d %s mixes kinds %s and %s", n.ID, n.Op, n.Args[0].Kind, n.Args[1].Kind)
		}
		switch n.Op {
		case OpLt, OpLe, OpGt, OpGe, OpEq, OpNe, OpAnd, OpOr:
			if n.Kind != KindInt {
				return fmt.Errorf("n%d %s must produce int, got %s", n.ID, n.Op, n.Kind)
			}
		default: // arithmetic follows its operands
			if n.Kind != n.Args[0].Kind {
				return fmt.Errorf("n%d %s produces %s from %s operands", n.ID, n.Op, n.Kind, n.Args[0].Kind)
			}
			if n.Kind == KindVec && (n.Lanes != n.Args[0].Lanes || n.Lanes != n.Args[1].Lanes) {
				return fmt.Errorf("n%d %s lane mismatch: %d vs %d/%d",
					n.ID, n.Op, n.Lanes, n.Args[0].Lanes, n.Args[1].Lanes)
			}
		}
		if n.Op == OpRem && n.Args[0].Kind != KindInt {
			return fmt.Errorf("n%d %% requires int operands, got %s", n.ID, n.Args[0].Kind)
		}
		return nil
	case OpNot:
		if err := wantArgs(n, 1); err != nil {
			return err
		}
		if n.Args[0].Kind != KindInt || n.Kind != KindInt {
			return fmt.Errorf("n%d ! must map int to int, got %s -> %s", n.ID, n.Args[0].Kind, n.Kind)
		}
		return nil
	case OpSelect:
		if err := wantArgs(n, 3); err != nil {
			return err
		}
		if n.Args[0].Kind != KindInt {
			return fmt.Errorf("n%d select condition must be int", n.ID)
		}
		if n.Args[1].Kind != n.Args[2].Kind {
			return fmt.Errorf("n%d select arms disagree: %s vs %s", n.ID, n.Args[1].Kind, n.Args[2].Kind)
		}
		if n.Kind != n.Args[1].Kind {
			return fmt.Errorf("n%d select produces %s from %s arms", n.ID, n.Kind, n.Args[1].Kind)
		}
		return nil
	case OpIntToFloat:
		if err := wantArgs(n, 1); err != nil {
			return err
		}
		if n.Args[0].Kind != KindInt || n.Kind != KindFloat {
			return fmt.Errorf("n%d int->float conversion is %s -> %s", n.ID, n.Args[0].Kind, n.Kind)
		}
		return nil
	case OpFloatToInt:
		if err := wantArgs(n, 1); err != nil {
			return err
		}
		if n.Args[0].Kind != KindFloat || n.Kind != KindInt {
			return fmt.Errorf("n%d float->int conversion is %s -> %s", n.ID, n.Args[0].Kind, n.Kind)
		}
		return nil
	case OpSplat:
		if err := wantArgs(n, 1); err != nil {
			return err
		}
		if n.Args[0].Kind == KindVec || n.Args[0].Kind == KindNone {
			return fmt.Errorf("n%d splat of non-scalar %s", n.ID, n.Args[0].Kind)
		}
		if n.Kind != KindVec || n.Lanes < 1 {
			return fmt.Errorf("n%d splat must produce a vector, got %s lanes=%d", n.ID, n.Kind, n.Lanes)
		}
		return nil
	case OpExtract:
		if err := wantArgs(n, 2); err != nil {
			return err
		}
		if n.Args[0].Kind != KindVec {
			return fmt.Errorf("n%d extract from non-vector", n.ID)
		}
		if n.Args[1].Kind != KindInt {
			return fmt.Errorf("n%d extract lane must be int", n.ID)
		}
		if n.Kind != KindFloat {
			return fmt.Errorf("n%d extract must produce float, got %s", n.ID, n.Kind)
		}
		return nil
	case OpInsert:
		if err := wantArgs(n, 3); err != nil {
			return err
		}
		if n.Args[0].Kind != KindVec {
			return fmt.Errorf("n%d insert into non-vector", n.ID)
		}
		if n.Args[1].Kind != KindInt {
			return fmt.Errorf("n%d insert lane must be int", n.ID)
		}
		if n.Args[2].Kind != KindFloat {
			return fmt.Errorf("n%d insert of non-float %s", n.ID, n.Args[2].Kind)
		}
		if n.Kind != KindVec || n.Lanes != n.Args[0].Lanes {
			return fmt.Errorf("n%d insert must produce a %d-lane vector, got %s lanes=%d",
				n.ID, n.Args[0].Lanes, n.Kind, n.Lanes)
		}
		return nil
	case OpLoad:
		if err := wantArgs(n, 1); err != nil {
			return err
		}
		if n.Kind == KindNone {
			return fmt.Errorf("n%d load produces no value", n.ID)
		}
		if n.Kind == KindVec {
			if n.Lanes < 1 {
				return fmt.Errorf("n%d vector load with lanes=%d", n.ID, n.Lanes)
			}
			if n.Width != 1 && n.Width != n.Lanes {
				return fmt.Errorf("n%d vector load width %d is neither 1 element nor %d lanes", n.ID, n.Width, n.Lanes)
			}
		} else if n.Width != 1 {
			return fmt.Errorf("n%d scalar load with width %d", n.ID, n.Width)
		}
		return validateMem(k, n)
	case OpStore:
		if err := wantArgs(n, 2); err != nil {
			return err
		}
		if n.Kind != KindNone {
			return fmt.Errorf("n%d store must not produce a value", n.ID)
		}
		if v := n.Args[1]; v.Kind == KindVec {
			if n.Width != 1 && n.Width != v.Lanes {
				return fmt.Errorf("n%d vector store width %d is neither 1 element nor %d lanes", n.ID, n.Width, v.Lanes)
			}
		} else if n.Width != 1 {
			return fmt.Errorf("n%d scalar store with width %d", n.ID, n.Width)
		}
		return validateMem(k, n)
	case OpLock, OpUnlock:
		if n.SemID < 0 || n.SemID >= k.NumSems {
			return fmt.Errorf("n%d %s semaphore %d out of range [0,%d)", n.ID, n.Op, n.SemID, k.NumSems)
		}
		return wantArgs(n, 0)
	case OpBarrier:
		return wantArgs(n, 0)
	case OpLoopOp:
		if n.Sub == nil {
			return fmt.Errorf("n%d loop without body graph", n.ID)
		}
		if n.Kind != KindNone {
			return fmt.Errorf("n%d loop must not produce a direct value (use loopout)", n.ID)
		}
		if n.Sub.Cond == nil {
			return fmt.Errorf("n%d loop body graph #%d has no exit condition", n.ID, n.Sub.ID)
		}
		want := n.Sub.NumLiveIn + n.Sub.NumCarry
		if len(n.Args) != want {
			return fmt.Errorf("n%d loop has %d args, body needs %d (livein %d + carry %d)",
				n.ID, len(n.Args), want, n.Sub.NumLiveIn, n.Sub.NumCarry)
		}
		return nil
	case OpLoopOut:
		if err := wantArgs(n, 1); err != nil {
			return err
		}
		lp := n.Args[0]
		if lp.Op != OpLoopOp {
			return fmt.Errorf("n%d loopout of non-loop n%d", n.ID, lp.ID)
		}
		if n.Idx < 0 || n.Idx >= lp.Sub.NumCarry {
			return fmt.Errorf("n%d loopout index %d out of range [0,%d)", n.ID, n.Idx, lp.Sub.NumCarry)
		}
		if len(lp.Sub.CarryUpdate) == lp.Sub.NumCarry {
			if u := lp.Sub.CarryUpdate[n.Idx]; u != nil && u.Kind != n.Kind {
				return fmt.Errorf("n%d loopout reads carry %d as %s but body updates it with %s",
					n.ID, n.Idx, n.Kind, u.Kind)
			}
		}
		return nil
	}
	return fmt.Errorf("n%d has unknown op %d", n.ID, int(n.Op))
}

func validateMem(k *Kernel, n *Node) error {
	if n.Arr == nil {
		return fmt.Errorf("n%d %s without array ref", n.ID, n.Op)
	}
	if n.Width <= 0 {
		return fmt.Errorf("n%d %s width %d", n.ID, n.Op, n.Width)
	}
	if n.Arr.Space == SpaceLocal {
		if n.Arr.LocalID < 0 || n.Arr.LocalID >= len(k.Locals) {
			return fmt.Errorf("n%d local array id %d out of range", n.ID, n.Arr.LocalID)
		}
	} else {
		found := false
		for _, p := range k.Params {
			if p.Pointer && p.Name == n.Arr.Name {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("n%d references unmapped global array %q", n.ID, n.Arr.Name)
		}
	}
	if n.Args[0].Kind != KindInt {
		return fmt.Errorf("n%d memory index must be int", n.ID)
	}
	return nil
}
