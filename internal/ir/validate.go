package ir

import "fmt"

// Validate checks the structural invariants of a kernel:
//
//   - every graph's nodes are in topological order (args, effect deps and
//     predicates refer to earlier nodes in the same graph);
//   - live-in and carry indices are in range;
//   - carry updates exist for every carried register and are kind-correct;
//   - memory ops carry an ArrayRef with a positive width;
//   - LoopOp argument counts match the body graph's live-in + carry counts;
//   - value kinds of operands are consistent with each operation.
//
// The lowering pass must produce kernels that validate; the scheduler and
// simulator rely on these invariants.
func Validate(k *Kernel) error {
	if k.Top == nil {
		return fmt.Errorf("ir: kernel %s has no top-level graph", k.Name)
	}
	if k.NumThreads <= 0 {
		return fmt.Errorf("ir: kernel %s has NumThreads=%d", k.Name, k.NumThreads)
	}
	for _, g := range k.CollectGraphs() {
		if err := validateGraph(k, g); err != nil {
			return fmt.Errorf("ir: kernel %s graph %s(#%d): %w", k.Name, g.Name, g.ID, err)
		}
	}
	return nil
}

func validateGraph(k *Kernel, g *Graph) error {
	pos := make(map[*Node]int, len(g.Nodes))
	for i, n := range g.Nodes {
		if n == nil {
			return fmt.Errorf("node %d is nil", i)
		}
		if _, dup := pos[n]; dup {
			return fmt.Errorf("node n%d appears twice", n.ID)
		}
		pos[n] = i
	}
	before := func(user *Node, dep *Node) error {
		di, ok := pos[dep]
		if !ok {
			return fmt.Errorf("n%d references node n%d outside this graph", user.ID, dep.ID)
		}
		if di >= pos[user] {
			return fmt.Errorf("n%d references later node n%d (not topological)", user.ID, dep.ID)
		}
		return nil
	}
	for _, n := range g.Nodes {
		for _, a := range n.Args {
			if err := before(n, a); err != nil {
				return err
			}
		}
		for _, d := range n.EffectDeps {
			if err := before(n, d); err != nil {
				return err
			}
		}
		if n.Pred != nil {
			if err := before(n, n.Pred); err != nil {
				return err
			}
			if n.Pred.Kind != KindInt {
				return fmt.Errorf("n%d predicate must be int, got %s", n.ID, n.Pred.Kind)
			}
		}
		if err := validateNode(k, g, n); err != nil {
			return err
		}
	}
	if g.Cond != nil {
		if _, ok := pos[g.Cond]; !ok {
			return fmt.Errorf("cond node n%d not in graph", g.Cond.ID)
		}
		if g.Cond.Kind != KindInt {
			return fmt.Errorf("cond node n%d must be int, got %s", g.Cond.ID, g.Cond.Kind)
		}
	}
	if len(g.CarryUpdate) != g.NumCarry {
		return fmt.Errorf("carry updates %d != carried registers %d", len(g.CarryUpdate), g.NumCarry)
	}
	for i, u := range g.CarryUpdate {
		if u == nil {
			return fmt.Errorf("carry %d has no update", i)
		}
		if _, ok := pos[u]; !ok {
			return fmt.Errorf("carry %d update n%d not in graph", i, u.ID)
		}
	}
	return nil
}

func wantArgs(n *Node, want int) error {
	if len(n.Args) != want {
		return fmt.Errorf("n%d %s has %d args, want %d", n.ID, n.Op, len(n.Args), want)
	}
	return nil
}

func validateNode(k *Kernel, g *Graph, n *Node) error {
	switch n.Op {
	case OpConstInt:
		return wantArgs(n, 0)
	case OpConstFloat:
		return wantArgs(n, 0)
	case OpParam:
		if n.Name == "" {
			return fmt.Errorf("n%d param without name", n.ID)
		}
		return wantArgs(n, 0)
	case OpThreadID, OpNumThreads:
		return wantArgs(n, 0)
	case OpLiveIn:
		if n.Idx < 0 || n.Idx >= g.NumLiveIn {
			return fmt.Errorf("n%d live-in index %d out of range [0,%d)", n.ID, n.Idx, g.NumLiveIn)
		}
		return wantArgs(n, 0)
	case OpCarry:
		if n.Idx < 0 || n.Idx >= g.NumCarry {
			return fmt.Errorf("n%d carry index %d out of range [0,%d)", n.ID, n.Idx, g.NumCarry)
		}
		return wantArgs(n, 0)
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpLt, OpLe, OpGt, OpGe,
		OpEq, OpNe, OpAnd, OpOr:
		if err := wantArgs(n, 2); err != nil {
			return err
		}
		if n.Args[0].Kind != n.Args[1].Kind {
			return fmt.Errorf("n%d %s mixes kinds %s and %s", n.ID, n.Op, n.Args[0].Kind, n.Args[1].Kind)
		}
		return nil
	case OpNot:
		return wantArgs(n, 1)
	case OpSelect:
		if err := wantArgs(n, 3); err != nil {
			return err
		}
		if n.Args[0].Kind != KindInt {
			return fmt.Errorf("n%d select condition must be int", n.ID)
		}
		if n.Args[1].Kind != n.Args[2].Kind {
			return fmt.Errorf("n%d select arms disagree: %s vs %s", n.ID, n.Args[1].Kind, n.Args[2].Kind)
		}
		return nil
	case OpIntToFloat, OpFloatToInt, OpSplat:
		return wantArgs(n, 1)
	case OpExtract:
		if err := wantArgs(n, 2); err != nil {
			return err
		}
		if n.Args[0].Kind != KindVec {
			return fmt.Errorf("n%d extract from non-vector", n.ID)
		}
		return nil
	case OpInsert:
		if err := wantArgs(n, 3); err != nil {
			return err
		}
		if n.Args[0].Kind != KindVec {
			return fmt.Errorf("n%d insert into non-vector", n.ID)
		}
		return nil
	case OpLoad:
		if err := wantArgs(n, 1); err != nil {
			return err
		}
		return validateMem(k, n)
	case OpStore:
		if err := wantArgs(n, 2); err != nil {
			return err
		}
		return validateMem(k, n)
	case OpLock, OpUnlock:
		if n.SemID < 0 || n.SemID >= k.NumSems {
			return fmt.Errorf("n%d %s semaphore %d out of range [0,%d)", n.ID, n.Op, n.SemID, k.NumSems)
		}
		return wantArgs(n, 0)
	case OpBarrier:
		return wantArgs(n, 0)
	case OpLoopOp:
		if n.Sub == nil {
			return fmt.Errorf("n%d loop without body graph", n.ID)
		}
		want := n.Sub.NumLiveIn + n.Sub.NumCarry
		if len(n.Args) != want {
			return fmt.Errorf("n%d loop has %d args, body needs %d (livein %d + carry %d)",
				n.ID, len(n.Args), want, n.Sub.NumLiveIn, n.Sub.NumCarry)
		}
		return nil
	case OpLoopOut:
		if err := wantArgs(n, 1); err != nil {
			return err
		}
		lp := n.Args[0]
		if lp.Op != OpLoopOp {
			return fmt.Errorf("n%d loopout of non-loop n%d", n.ID, lp.ID)
		}
		if n.Idx < 0 || n.Idx >= lp.Sub.NumCarry {
			return fmt.Errorf("n%d loopout index %d out of range [0,%d)", n.ID, n.Idx, lp.Sub.NumCarry)
		}
		return nil
	}
	return fmt.Errorf("n%d has unknown op %d", n.ID, int(n.Op))
}

func validateMem(k *Kernel, n *Node) error {
	if n.Arr == nil {
		return fmt.Errorf("n%d %s without array ref", n.ID, n.Op)
	}
	if n.Width <= 0 {
		return fmt.Errorf("n%d %s width %d", n.ID, n.Op, n.Width)
	}
	if n.Arr.Space == SpaceLocal {
		if n.Arr.LocalID < 0 || n.Arr.LocalID >= len(k.Locals) {
			return fmt.Errorf("n%d local array id %d out of range", n.ID, n.Arr.LocalID)
		}
	} else {
		found := false
		for _, p := range k.Params {
			if p.Pointer && p.Name == n.Arr.Name {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("n%d references unmapped global array %q", n.ID, n.Arr.Name)
		}
	}
	if n.Args[0].Kind != KindInt {
		return fmt.Errorf("n%d memory index must be int", n.ID)
	}
	return nil
}
