package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

// buildMiniKernel constructs a small valid kernel by hand: a top graph with
// one loop that sums a global array.
func buildMiniKernel() *Kernel {
	nextID := 0
	k := &Kernel{
		Name:        "mini",
		NumThreads:  2,
		VectorLanes: 4,
		Params: []Param{
			{Name: "A", Pointer: true},
			{Name: "n"},
		},
		Maps: []Map{
			{Dir: MapTo, Name: "A", Low: ConstExpr(0), Len: ParamExpr("n")},
		},
	}
	arrA := &ArrayRef{Space: SpaceExternal, Name: "A", ElemWords: 1}

	// Loop body: i < n; s += A[i]; i++
	lb := NewBuilder(1, "loop", &nextID)
	i := lb.Carry(0, KindInt, 0)
	s := lb.Carry(1, KindFloat, 0)
	n := lb.Param("n", KindInt)
	cond := lb.Bin(OpLt, i, n)
	ld := lb.Load(arrA, i, KindFloat, 0, 1)
	s2 := lb.Bin(OpAdd, s, ld)
	one := lb.ConstInt(1)
	i2 := lb.Bin(OpAdd, i, one)
	loopG := lb.Graph()
	loopG.Cond = cond
	loopG.CarryUpdate = []*Node{i2, s2}

	tb := NewBuilder(0, "top", &nextID)
	zero := tb.ConstInt(0)
	fzero := tb.ConstFloat(0)
	loop := tb.Loop(loopG, zero, fzero)
	sum := tb.LoopOut(loop, 1, KindFloat, 0)
	st := tb.Store(arrA, tb.ConstInt(0), sum, 1)
	st.EffectDeps = append(st.EffectDeps, loop)
	k.Top = tb.Graph()
	return k
}

func TestValidateMiniKernel(t *testing.T) {
	k := buildMiniKernel()
	if err := Validate(k); err != nil {
		t.Fatal(err)
	}
	if got := len(k.CollectGraphs()); got != 2 {
		t.Errorf("graphs = %d", got)
	}
	counts := k.CountOps()
	if counts[OpLoad] != 1 || counts[OpStore] != 1 || counts[OpLoopOp] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if k.NumNodes() != len(k.Top.Nodes)+len(k.CollectGraphs()[1].Nodes) {
		t.Error("NumNodes mismatch")
	}
}

func TestValidateRejectsBadKernels(t *testing.T) {
	t.Run("no top", func(t *testing.T) {
		k := &Kernel{Name: "x", NumThreads: 1}
		if err := Validate(k); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("zero threads", func(t *testing.T) {
		k := buildMiniKernel()
		k.NumThreads = 0
		if err := Validate(k); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("forward reference", func(t *testing.T) {
		k := buildMiniKernel()
		top := k.Top
		// Make the first node reference the last (not topological).
		last := top.Nodes[len(top.Nodes)-1]
		top.Nodes[0].Args = []*Node{last}
		if err := Validate(k); err == nil || !strings.Contains(err.Error(), "topological") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("carry out of range", func(t *testing.T) {
		k := buildMiniKernel()
		g := k.CollectGraphs()[1]
		for _, n := range g.Nodes {
			if n.Op == OpCarry {
				n.Idx = 99
				break
			}
		}
		if err := Validate(k); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("loop arg mismatch", func(t *testing.T) {
		k := buildMiniKernel()
		for _, n := range k.Top.Nodes {
			if n.Op == OpLoopOp {
				n.Args = n.Args[:1]
			}
		}
		if err := Validate(k); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("store without array", func(t *testing.T) {
		k := buildMiniKernel()
		for _, n := range k.Top.Nodes {
			if n.Op == OpStore {
				n.Arr = nil
			}
		}
		if err := Validate(k); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("unmapped global", func(t *testing.T) {
		k := buildMiniKernel()
		for _, n := range k.Top.Nodes {
			if n.Op == OpStore {
				n.Arr = &ArrayRef{Space: SpaceExternal, Name: "nope", ElemWords: 1}
			}
		}
		if err := Validate(k); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("sem out of range", func(t *testing.T) {
		k := buildMiniKernel()
		nextID := k.NumNodes() + 10
		b := NewBuilder(9, "x", &nextID)
		lk := b.Lock(3)
		k.Top.Nodes = append(k.Top.Nodes, lk)
		if err := Validate(k); err == nil {
			t.Fatal("expected error")
		}
	})
}

func TestScalarExprs(t *testing.T) {
	env := map[string]int64{"DIM": 8}
	e := &BinExpr{Op: OpMul, L: ParamExpr("DIM"), R: ParamExpr("DIM")}
	v, err := e.Eval(env)
	if err != nil || v != 64 {
		t.Fatalf("DIM*DIM = %d (%v)", v, err)
	}
	if _, err := ParamExpr("missing").Eval(env); err == nil {
		t.Error("expected unknown-parameter error")
	}
	if _, err := (&BinExpr{Op: OpDiv, L: ConstExpr(1), R: ConstExpr(0)}).Eval(env); err == nil {
		t.Error("expected division-by-zero error")
	}
	sub := &BinExpr{Op: OpSub, L: ConstExpr(10), R: ConstExpr(4)}
	if v, _ := sub.Eval(nil); v != 6 {
		t.Errorf("10-4 = %d", v)
	}
	add := &BinExpr{Op: OpAdd, L: ConstExpr(10), R: ConstExpr(4)}
	if v, _ := add.Eval(nil); v != 14 {
		t.Errorf("10+4 = %d", v)
	}
	rem := &BinExpr{Op: OpRem, L: ConstExpr(10), R: ConstExpr(4)}
	if v, _ := rem.Eval(nil); v != 2 {
		t.Errorf("10%%4 = %d", v)
	}
}

// Property: ScalarExpr evaluation is deterministic and BinExpr obeys the
// integer semantics of its operator.
func TestScalarExprProperty(t *testing.T) {
	f := func(a, b int32, opSel uint8) bool {
		ops := []Op{OpAdd, OpSub, OpMul}
		op := ops[int(opSel)%len(ops)]
		e := &BinExpr{Op: op, L: ConstExpr(int64(a)), R: ConstExpr(int64(b))}
		v, err := e.Eval(nil)
		if err != nil {
			return false
		}
		switch op {
		case OpAdd:
			return v == int64(a)+int64(b)
		case OpSub:
			return v == int64(a)-int64(b)
		case OpMul:
			return v == int64(a)*int64(b)
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOpPredicates(t *testing.T) {
	for _, op := range []Op{OpLoad, OpStore, OpLock, OpUnlock, OpBarrier, OpLoopOp} {
		if !op.IsVLO() {
			t.Errorf("%s should be VLO", op)
		}
	}
	for _, op := range []Op{OpAdd, OpMul, OpSelect, OpCarry} {
		if op.IsVLO() {
			t.Errorf("%s should not be VLO", op)
		}
	}
	if !OpLoad.IsMemory() || !OpStore.IsMemory() || OpLock.IsMemory() {
		t.Error("IsMemory misclassifies")
	}
}

func TestDumpContainsStructure(t *testing.T) {
	k := buildMiniKernel()
	d := Dump(k)
	for _, want := range []string{"kernel mini", "param A pointer=true", "graph loop", "cond n", "carry[0]", "-> graph#1"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestLocalArraySize(t *testing.T) {
	la := LocalArray{ElemWords: 4, NumElems: 16}
	if la.SizeBytes() != 256 {
		t.Errorf("size = %d", la.SizeBytes())
	}
}

func TestTypeStrings(t *testing.T) {
	if KindInt.String() != "int" || KindVec.String() != "vec" {
		t.Error("kind strings")
	}
	if SpaceExternal.String() != "external" || SpaceLocal.String() != "local" {
		t.Error("space strings")
	}
	if MapToFrom.String() != "tofrom" {
		t.Error("map dir strings")
	}
	if OpLoad.String() != "load" {
		t.Error("op strings")
	}
}
