package ir

import (
	"fmt"
	"strings"
)

// Builder incrementally constructs a Graph in topological order. The
// lowering pass and tests use it; it assigns node IDs and keeps the node
// list consistent.
type Builder struct {
	g      *Graph
	nextID *int
}

// NewBuilder returns a builder for a fresh graph. nextID is shared across
// all builders of a kernel so node IDs are unique kernel-wide.
func NewBuilder(id int, name string, nextID *int) *Builder {
	return &Builder{g: &Graph{ID: id, Name: name}, nextID: nextID}
}

// Graph returns the graph under construction.
func (b *Builder) Graph() *Graph { return b.g }

// Add appends a node, assigning its ID, and returns it.
func (b *Builder) Add(n *Node) *Node {
	n.ID = *b.nextID
	*b.nextID++
	b.g.Nodes = append(b.g.Nodes, n)
	if n.Op == OpLoopOp {
		b.g.Loops = append(b.g.Loops, n)
	}
	return n
}

// ConstInt appends an integer constant.
func (b *Builder) ConstInt(v int64) *Node {
	return b.Add(&Node{Op: OpConstInt, Kind: KindInt, IVal: v})
}

// ConstFloat appends a float constant.
func (b *Builder) ConstFloat(v float64) *Node {
	return b.Add(&Node{Op: OpConstFloat, Kind: KindFloat, FVal: v})
}

// Param appends a scalar parameter read.
func (b *Builder) Param(name string, kind ValKind) *Node {
	return b.Add(&Node{Op: OpParam, Kind: kind, Name: name})
}

// ThreadID appends omp_get_thread_num().
func (b *Builder) ThreadID() *Node { return b.Add(&Node{Op: OpThreadID, Kind: KindInt}) }

// NumThreads appends omp_get_num_threads().
func (b *Builder) NumThreads() *Node { return b.Add(&Node{Op: OpNumThreads, Kind: KindInt}) }

// LiveIn appends a live-in value reference.
func (b *Builder) LiveIn(idx int, kind ValKind, lanes int) *Node {
	if idx >= b.g.NumLiveIn {
		b.g.NumLiveIn = idx + 1
	}
	return b.Add(&Node{Op: OpLiveIn, Kind: kind, Lanes: lanes, Idx: idx})
}

// Carry appends a carried-register read.
func (b *Builder) Carry(idx int, kind ValKind, lanes int) *Node {
	if idx >= b.g.NumCarry {
		b.g.NumCarry = idx + 1
	}
	return b.Add(&Node{Op: OpCarry, Kind: kind, Lanes: lanes, Idx: idx})
}

// Bin appends a binary arithmetic/compare node. Result kind follows the
// operands for arithmetic and is int for comparisons/logic.
func (b *Builder) Bin(op Op, l, r *Node) *Node {
	kind := l.Kind
	lanes := l.Lanes
	switch op {
	case OpLt, OpLe, OpGt, OpGe, OpEq, OpNe, OpAnd, OpOr:
		kind, lanes = KindInt, 0
	}
	return b.Add(&Node{Op: op, Kind: kind, Lanes: lanes, Args: []*Node{l, r}})
}

// Not appends logical negation.
func (b *Builder) Not(x *Node) *Node {
	return b.Add(&Node{Op: OpNot, Kind: KindInt, Args: []*Node{x}})
}

// Select appends c ? a : b.
func (b *Builder) Select(c, a, x *Node) *Node {
	return b.Add(&Node{Op: OpSelect, Kind: a.Kind, Lanes: a.Lanes, Args: []*Node{c, a, x}})
}

// IntToFloat appends an int->float conversion.
func (b *Builder) IntToFloat(x *Node) *Node {
	return b.Add(&Node{Op: OpIntToFloat, Kind: KindFloat, Args: []*Node{x}})
}

// FloatToInt appends a float->int conversion.
func (b *Builder) FloatToInt(x *Node) *Node {
	return b.Add(&Node{Op: OpFloatToInt, Kind: KindInt, Args: []*Node{x}})
}

// Splat broadcasts a scalar float into a vector.
func (b *Builder) Splat(x *Node, lanes int) *Node {
	return b.Add(&Node{Op: OpSplat, Kind: KindVec, Lanes: lanes, Args: []*Node{x}})
}

// Extract reads one lane of a vector.
func (b *Builder) Extract(v, lane *Node) *Node {
	return b.Add(&Node{Op: OpExtract, Kind: KindFloat, Args: []*Node{v, lane}})
}

// Insert writes one lane of a vector, producing a new vector value.
func (b *Builder) Insert(v, lane, s *Node) *Node {
	return b.Add(&Node{Op: OpInsert, Kind: KindVec, Lanes: v.Lanes, Args: []*Node{v, lane, s}})
}

// Load appends a memory load.
func (b *Builder) Load(arr *ArrayRef, idx *Node, kind ValKind, lanes, width int) *Node {
	return b.Add(&Node{Op: OpLoad, Kind: kind, Lanes: lanes, Args: []*Node{idx}, Arr: arr, Width: width})
}

// Store appends a memory store.
func (b *Builder) Store(arr *ArrayRef, idx, val *Node, width int) *Node {
	return b.Add(&Node{Op: OpStore, Kind: KindNone, Args: []*Node{idx, val}, Arr: arr, Width: width})
}

// Lock appends a semaphore acquire.
func (b *Builder) Lock(sem int) *Node {
	return b.Add(&Node{Op: OpLock, Kind: KindNone, SemID: sem})
}

// Unlock appends a semaphore release.
func (b *Builder) Unlock(sem int) *Node {
	return b.Add(&Node{Op: OpUnlock, Kind: KindNone, SemID: sem})
}

// Barrier appends an all-thread barrier.
func (b *Builder) Barrier() *Node { return b.Add(&Node{Op: OpBarrier, Kind: KindNone}) }

// Loop appends a nested-loop node whose body is sub.
func (b *Builder) Loop(sub *Graph, args ...*Node) *Node {
	return b.Add(&Node{Op: OpLoopOp, Kind: KindNone, Args: args, Sub: sub})
}

// LoopOut reads carried register idx of a finished loop.
func (b *Builder) LoopOut(loop *Node, idx int, kind ValKind, lanes int) *Node {
	return b.Add(&Node{Op: OpLoopOut, Kind: kind, Lanes: lanes, Args: []*Node{loop}, Idx: idx})
}

// Dump renders a kernel as text for debugging and golden tests.
func Dump(k *Kernel) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "kernel %s threads=%d lanes=%d sems=%d\n", k.Name, k.NumThreads, k.VectorLanes, k.NumSems)
	for _, p := range k.Params {
		fmt.Fprintf(&sb, "  param %s pointer=%v float=%v\n", p.Name, p.Pointer, p.Float)
	}
	for _, m := range k.Maps {
		fmt.Fprintf(&sb, "  map %s %s scalar=%v\n", m.Dir, m.Name, m.Scalar)
	}
	for _, l := range k.Locals {
		fmt.Fprintf(&sb, "  local %s elems=%d words/elem=%d\n", l.Name, l.NumElems, l.ElemWords)
	}
	for _, g := range k.CollectGraphs() {
		fmt.Fprintf(&sb, "graph %s(#%d) livein=%d carry=%d\n", g.Name, g.ID, g.NumLiveIn, g.NumCarry)
		for _, n := range g.Nodes {
			fmt.Fprintf(&sb, "  n%-4d %-8s %-6s", n.ID, n.Op, n.Kind)
			for _, a := range n.Args {
				fmt.Fprintf(&sb, " n%d", a.ID)
			}
			switch n.Op {
			case OpConstInt:
				fmt.Fprintf(&sb, " %d", n.IVal)
			case OpConstFloat:
				fmt.Fprintf(&sb, " %g", n.FVal)
			case OpParam:
				fmt.Fprintf(&sb, " %s", n.Name)
			case OpLiveIn, OpCarry, OpLoopOut:
				fmt.Fprintf(&sb, " [%d]", n.Idx)
			case OpLoad, OpStore:
				fmt.Fprintf(&sb, " %s w=%d", n.Arr, n.Width)
			case OpLock, OpUnlock:
				fmt.Fprintf(&sb, " sem=%d", n.SemID)
			case OpLoopOp:
				fmt.Fprintf(&sb, " -> graph#%d", n.Sub.ID)
			}
			if len(n.EffectDeps) > 0 {
				sb.WriteString(" eff[")
				for i, d := range n.EffectDeps {
					if i > 0 {
						sb.WriteString(",")
					}
					fmt.Fprintf(&sb, "n%d", d.ID)
				}
				sb.WriteString("]")
			}
			if n.Pred != nil {
				fmt.Fprintf(&sb, " pred=n%d", n.Pred.ID)
			}
			sb.WriteString("\n")
		}
		if g.Cond != nil {
			fmt.Fprintf(&sb, "  cond n%d\n", g.Cond.ID)
		}
		for i, u := range g.CarryUpdate {
			fmt.Fprintf(&sb, "  carry[%d] <- n%d\n", i, u.ID)
		}
	}
	return sb.String()
}
