// Package ir defines the dataflow intermediate representation the Nymble-like
// HLS flow lowers MiniC kernels into. A kernel is a tree of Graphs (one per
// loop body plus the top-level region). Each Graph is a DAG of typed Nodes
// in topological order; loops appear in their parent graph as single
// variable-latency LoopOp nodes, exactly as the paper describes ("inner
// (nested) loops ... are embedded into the dataflow graph of the surrounding
// loop as a single operation node with statically unknown delay").
package ir

import "fmt"

// ValKind is the runtime kind of a value.
type ValKind int

// Value kinds.
const (
	KindInt ValKind = iota
	KindFloat
	KindVec
	KindNone // effect-only ops (stores, locks, barrier, loop)
)

func (k ValKind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindVec:
		return "vec"
	case KindNone:
		return "none"
	}
	return fmt.Sprintf("ValKind(%d)", int(k))
}

// Op enumerates IR operations.
type Op int

// IR operations.
const (
	OpConstInt Op = iota
	OpConstFloat
	OpParam      // reads a scalar kernel parameter by name
	OpThreadID   // omp_get_thread_num()
	OpNumThreads // omp_get_num_threads()
	OpLiveIn     // value passed from the parent graph (index Idx)
	OpCarry      // loop-carried register at iteration start (index Idx)

	// Integer/float/vector arithmetic. Operand and result kinds are
	// uniform; vectors combine lane-wise (scalars are Splat-broadcast
	// during lowering).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem

	// Comparisons and logic produce int 0/1.
	OpLt
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
	OpAnd
	OpOr
	OpNot

	OpSelect     // Args[0] != 0 ? Args[1] : Args[2]
	OpIntToFloat // int -> float
	OpFloatToInt // float -> int (C truncation)
	OpSplat      // scalar float -> vector broadcast
	OpExtract    // vector lane read:  Args[0]=vec, Args[1]=lane index
	OpInsert     // vector lane write: Args[0]=vec, Args[1]=lane, Args[2]=scalar -> new vec

	// Memory (variable-latency operations).
	OpLoad  // Args[0]=element index; Arr names the array; Width elements
	OpStore // Args[0]=element index, Args[1]=value

	// Synchronization (variable-latency operations).
	OpLock    // acquire the hardware semaphore SemID (spins)
	OpUnlock  // release
	OpBarrier // all-thread barrier

	// Nested loop (variable-latency operation). Args = live-ins followed
	// by initial carry values; Sub is the loop body graph.
	OpLoopOp
	OpLoopOut // Args[0] = LoopOp node; Idx = carried register index
)

var opNames = map[Op]string{
	OpConstInt: "const.i", OpConstFloat: "const.f", OpParam: "param",
	OpThreadID: "tid", OpNumThreads: "nthreads", OpLiveIn: "livein",
	OpCarry: "carry", OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpDiv: "div", OpRem: "rem", OpLt: "lt", OpLe: "le", OpGt: "gt",
	OpGe: "ge", OpEq: "eq", OpNe: "ne", OpAnd: "and", OpOr: "or",
	OpNot: "not", OpSelect: "select", OpIntToFloat: "i2f",
	OpFloatToInt: "f2i", OpSplat: "splat", OpExtract: "extract",
	OpInsert: "insert", OpLoad: "load", OpStore: "store", OpLock: "lock",
	OpUnlock: "unlock", OpBarrier: "barrier", OpLoopOp: "loop",
	OpLoopOut: "loopout",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// IsVLO reports whether the operation has a statically unknown delay, i.e.
// whether it is a variable-latency operation in the paper's sense. Stages
// containing a VLO become reordering stages and can stall the pipeline.
func (o Op) IsVLO() bool {
	switch o {
	case OpLoad, OpStore, OpLock, OpUnlock, OpBarrier, OpLoopOp:
		return true
	}
	return false
}

// IsMemory reports whether the op accesses memory.
func (o Op) IsMemory() bool { return o == OpLoad || o == OpStore }

// IsFloatArith reports whether the op is floating-point arithmetic when its
// result kind is float or vector (used by the FLOP event counter).
func (o Op) IsFloatArith() bool {
	switch o {
	case OpAdd, OpSub, OpMul, OpDiv:
		return true
	}
	return false
}

// IsIntArith reports whether the op counts as integer arithmetic.
func (o Op) IsIntArith() bool {
	switch o {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem:
		return true
	}
	return false
}

// MemSpace distinguishes external DRAM from on-chip BRAM.
type MemSpace int

// Memory spaces.
const (
	SpaceExternal MemSpace = iota // board DRAM shared with the host
	SpaceLocal                    // per-thread on-chip BRAM
)

func (s MemSpace) String() string {
	if s == SpaceExternal {
		return "external"
	}
	return "local"
}

// ArrayRef identifies the array a memory op touches. Distinct arrays never
// alias: globals are distinct mapped buffers, locals are distinct BRAMs
// (this mirrors OpenMP map semantics).
type ArrayRef struct {
	Space     MemSpace
	Name      string
	LocalID   int // index into Kernel.Locals for SpaceLocal
	ElemWords int // 32-bit words per element (1 scalar, N for vectors)
}

func (a *ArrayRef) String() string {
	return fmt.Sprintf("%s:%s", a.Space, a.Name)
}

// Node is one IR operation.
type Node struct {
	ID   int
	Op   Op
	Kind ValKind
	// Lanes is the vector width for KindVec values and vector memory ops.
	Lanes int
	Args  []*Node

	IVal int64     // OpConstInt
	FVal float64   // OpConstFloat
	Name string    // OpParam
	Idx  int       // OpLiveIn / OpCarry / OpLoopOut index
	Arr  *ArrayRef // OpLoad / OpStore
	// Width is the number of scalar elements a memory op moves (1 for a
	// scalar access, Lanes for a vector access on a scalar-element array,
	// 1 for an access on a vector-element array — Arr.ElemWords covers it).
	Width int
	SemID int    // OpLock / OpUnlock semaphore id
	Sub   *Graph // OpLoopOp body

	// Effect ordering: nodes that must have completed before this node may
	// start, beyond dataflow (conflicting memory ops, lock fences).
	EffectDeps []*Node

	// Pred, if non-nil, predicates an effectful op: it executes only when
	// Pred evaluates nonzero (if-conversion of conditional stores/loops).
	Pred *Node
}

func (n *Node) String() string {
	s := fmt.Sprintf("n%d = %s", n.ID, n.Op)
	if n.Arr != nil {
		s += " " + n.Arr.String()
	}
	if n.Op == OpParam {
		s += " " + n.Name
	}
	return s
}

// Graph is a loop body (or the kernel's top-level region) in SSA-like
// dataflow form. Nodes are stored in topological order: every argument and
// effect dependency precedes its user.
type Graph struct {
	ID   int
	Name string

	Nodes []*Node

	NumLiveIn int
	NumCarry  int

	// Cond is the loop-continue predicate, evaluated from the carry and
	// live-in values at the start of each iteration. A nil Cond means the
	// graph executes exactly once (the kernel top-level region).
	Cond *Node

	// CarryUpdate[i] yields the next-iteration value of carried register i.
	CarryUpdate []*Node

	// CarryInit records, for documentation/validation, that LoopOp args
	// NumLiveIn+i seed carried register i.

	// Loops lists the nested LoopOp nodes (in Nodes as well).
	Loops []*Node
}

// LocalArray describes a per-thread BRAM buffer.
type LocalArray struct {
	ID        int
	Name      string
	ElemWords int // 32-bit words per element
	NumElems  int
}

// SizeBytes returns the buffer size in bytes.
func (l *LocalArray) SizeBytes() int { return l.ElemWords * 4 * l.NumElems }

// ScalarExpr is a host-evaluated integer expression (map-clause sizes such
// as DIM*DIM, evaluated against the kernel's scalar arguments at launch).
type ScalarExpr interface {
	Eval(env map[string]int64) (int64, error)
}

// ConstExpr is a constant ScalarExpr.
type ConstExpr int64

// Eval returns the constant.
func (c ConstExpr) Eval(map[string]int64) (int64, error) { return int64(c), nil }

// ParamExpr reads a scalar kernel argument.
type ParamExpr string

// Eval looks the parameter up in env.
func (p ParamExpr) Eval(env map[string]int64) (int64, error) {
	v, ok := env[string(p)]
	if !ok {
		return 0, fmt.Errorf("ir: unknown parameter %q in size expression", string(p))
	}
	return v, nil
}

// BinExpr combines two ScalarExprs.
type BinExpr struct {
	Op   Op // OpAdd, OpSub, OpMul, OpDiv, OpRem
	L, R ScalarExpr
}

// Eval evaluates both sides and applies the operator.
func (b *BinExpr) Eval(env map[string]int64) (int64, error) {
	l, err := b.L.Eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.R.Eval(env)
	if err != nil {
		return 0, err
	}
	switch b.Op {
	case OpAdd:
		return l + r, nil
	case OpSub:
		return l - r, nil
	case OpMul:
		return l * r, nil
	case OpDiv:
		if r == 0 {
			return 0, fmt.Errorf("ir: division by zero in size expression")
		}
		return l / r, nil
	case OpRem:
		if r == 0 {
			return 0, fmt.Errorf("ir: modulo by zero in size expression")
		}
		return l % r, nil
	}
	return 0, fmt.Errorf("ir: unsupported size-expression op %s", b.Op)
}

// MapDir is the transfer direction of a mapped buffer.
type MapDir int

// Transfer directions.
const (
	MapTo MapDir = iota
	MapFrom
	MapToFrom
)

func (d MapDir) String() string {
	switch d {
	case MapTo:
		return "to"
	case MapFrom:
		return "from"
	case MapToFrom:
		return "tofrom"
	}
	return "map?"
}

// Map is a lowered map clause: which host buffer is copied to/from the
// device and how many elements it spans.
type Map struct {
	Dir    MapDir
	Name   string
	Scalar bool
	// Float records the element type of scalar maps (the host needs it to
	// encode/decode the one-word device buffer).
	Float bool
	Low   ScalarExpr // element offset; nil for scalars
	Len   ScalarExpr // element count; nil for scalars
}

// Param is a kernel parameter: either a scalar (int/float) or a pointer to
// a mapped global array.
type Param struct {
	Name    string
	Pointer bool
	Float   bool // scalar params: float vs int
}

// Kernel is a fully lowered accelerator kernel.
type Kernel struct {
	Name        string
	NumThreads  int
	VectorLanes int
	Params      []Param
	Maps        []Map
	Locals      []LocalArray
	NumSems     int // hardware semaphores (critical sections)
	Top         *Graph

	graphs []*Graph // all graphs, top first (filled by CollectGraphs)
}

// CollectGraphs returns all graphs in the kernel, top-level first,
// discovering nested loop bodies recursively. The result is cached.
func (k *Kernel) CollectGraphs() []*Graph {
	if k.graphs != nil {
		return k.graphs
	}
	var all []*Graph
	var walk func(g *Graph)
	walk = func(g *Graph) {
		all = append(all, g)
		for _, n := range g.Nodes {
			if n.Op == OpLoopOp {
				walk(n.Sub)
			}
		}
	}
	if k.Top != nil {
		walk(k.Top)
	}
	k.graphs = all
	return all
}

// NumNodes returns the total node count across all graphs.
func (k *Kernel) NumNodes() int {
	n := 0
	for _, g := range k.CollectGraphs() {
		n += len(g.Nodes)
	}
	return n
}

// CountOps returns per-op totals across all graphs (area model input).
func (k *Kernel) CountOps() map[Op]int {
	counts := make(map[Op]int)
	for _, g := range k.CollectGraphs() {
		for _, n := range g.Nodes {
			counts[n.Op]++
		}
	}
	return counts
}
