package hwsem

import (
	"testing"
	"testing/quick"
)

func TestSemaphoreBasic(t *testing.T) {
	s := NewSemaphore()
	ok, err := s.TryAcquire(3)
	if err != nil || !ok {
		t.Fatalf("first acquire: ok=%v err=%v", ok, err)
	}
	if s.Holder() != 3 {
		t.Errorf("holder = %d", s.Holder())
	}
	ok, err = s.TryAcquire(5)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("second acquire should fail")
	}
	if s.Contended != 1 {
		t.Errorf("contended = %d", s.Contended)
	}
	if err := s.Release(5); err == nil {
		t.Error("non-holder release should error")
	}
	if err := s.Release(3); err != nil {
		t.Fatal(err)
	}
	ok, err = s.TryAcquire(5)
	if err != nil || !ok {
		t.Fatalf("acquire after release: ok=%v err=%v", ok, err)
	}
}

func TestSemaphoreReacquireErrors(t *testing.T) {
	s := NewSemaphore()
	if _, err := s.TryAcquire(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.TryAcquire(1); err == nil {
		t.Error("re-acquire by holder should error")
	}
	if _, err := s.TryAcquire(-1); err == nil {
		t.Error("negative thread should error")
	}
}

// Property: mutual exclusion — simulating random acquire/release schedules
// never yields two simultaneous holders and all successful acquires
// alternate with releases.
func TestSemaphoreMutualExclusionProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		s := NewSemaphore()
		holder := -1
		for _, op := range ops {
			thread := int(op % 4)
			if op%2 == 0 {
				if thread == holder {
					continue // holder re-acquire is an API violation
				}
				ok, err := s.TryAcquire(thread)
				if err != nil {
					return false
				}
				if ok {
					if holder != -1 {
						return false // two holders
					}
					holder = thread
				} else if holder == -1 {
					return false // failed acquire on a free lock
				}
			} else if holder == thread {
				if err := s.Release(thread); err != nil {
					return false
				}
				holder = -1
			}
		}
		return s.Holder() == holder
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	b := NewBarrier(3)
	g0 := b.Arrive()
	g1 := b.Arrive()
	if b.Generation() != 0 {
		t.Fatalf("generation advanced early")
	}
	g2 := b.Arrive()
	if g0 != 0 || g1 != 0 || g2 != 0 {
		t.Errorf("arrival generations %d %d %d, want 0", g0, g1, g2)
	}
	if b.Generation() != 1 {
		t.Errorf("generation = %d, want 1", b.Generation())
	}
	if b.Releases != 1 || b.Waits != 3 {
		t.Errorf("releases=%d waits=%d", b.Releases, b.Waits)
	}
	// Second round.
	for i := 0; i < 3; i++ {
		if g := b.Arrive(); g != 1 {
			t.Errorf("round-2 arrival generation %d, want 1", g)
		}
	}
	if b.Generation() != 2 {
		t.Errorf("generation = %d, want 2", b.Generation())
	}
}

// Property: for any thread count n>=1, n*k arrivals produce exactly k
// generation advances.
func TestBarrierGenerationProperty(t *testing.T) {
	f := func(n, k uint8) bool {
		threads := int(n%8) + 1
		rounds := int(k % 16)
		b := NewBarrier(threads)
		for i := 0; i < threads*rounds; i++ {
			b.Arrive()
		}
		return b.Generation() == int64(rounds)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
