// Package hwsem models the hardware semaphore of the paper's architecture
// template ("the hardware semaphore connected to the Avalon bus is used to
// handle OpenMP synchronization constructs (critical and barrier)").
// Threads acquire by polling over the bus: a failed attempt retries after a
// fixed round-trip, which is the Spinning state the profiler records.
package hwsem

import "fmt"

// Semaphore is one binary hardware lock.
type Semaphore struct {
	holder int // -1 when free

	// Acquisitions counts successful acquires; Contended counts acquire
	// attempts that found the lock taken.
	Acquisitions int64
	Contended    int64
}

// NewSemaphore returns a free semaphore.
func NewSemaphore() *Semaphore { return &Semaphore{holder: -1} }

// TryAcquire attempts to take the lock for a thread. It returns true on
// success. Re-acquiring while holding is an error (the compiler never emits
// nested unnamed criticals).
func (s *Semaphore) TryAcquire(thread int) (bool, error) {
	if thread < 0 {
		return false, fmt.Errorf("hwsem: invalid thread %d", thread)
	}
	if s.holder == thread {
		return false, fmt.Errorf("hwsem: thread %d re-acquiring held lock", thread)
	}
	if s.holder >= 0 {
		s.Contended++
		return false, nil
	}
	s.holder = thread
	s.Acquisitions++
	return true, nil
}

// Release frees the lock; only the holder may release.
func (s *Semaphore) Release(thread int) error {
	if s.holder != thread {
		return fmt.Errorf("hwsem: thread %d releasing lock held by %d", thread, s.holder)
	}
	s.holder = -1
	return nil
}

// Holder returns the current holder, or -1.
func (s *Semaphore) Holder() int { return s.holder }

// Barrier is an all-thread rendezvous. Threads arrive and block until the
// expected count is reached, at which point the generation advances and all
// waiters are released.
type Barrier struct {
	expected int
	arrived  int
	gen      int64

	// Waits counts total arrivals; Releases counts barrier completions.
	Waits    int64
	Releases int64
}

// NewBarrier creates a barrier for n threads.
func NewBarrier(n int) *Barrier { return &Barrier{expected: n} }

// Arrive registers a thread at the barrier and returns the generation to
// wait for. The thread is released once Generation() exceeds it.
func (b *Barrier) Arrive() int64 {
	b.Waits++
	gen := b.gen
	b.arrived++
	if b.arrived >= b.expected {
		b.arrived = 0
		b.gen++
		b.Releases++
	}
	return gen
}

// Generation returns the current barrier generation.
func (b *Barrier) Generation() int64 { return b.gen }

// Expected returns the number of participating threads.
func (b *Barrier) Expected() int { return b.expected }
