// Quickstart: compile a small OpenMP-offload kernel with the HLS flow, run
// it on the cycle-level accelerator model with the profiling unit attached,
// check the result, and write a Paraver trace you could open in the real
// Paraver GUI.
package main

import (
	"context"
	"fmt"
	"log"

	"paravis/internal/core"
	"paravis/internal/paraver/analysis"
	"paravis/internal/sim"
)

// A SAXPY kernel: the four hardware threads split the vector statically.
const src = `
void saxpy(float* X, float* Y, float a, int n) {
  #pragma omp target parallel map(to:X[0:n]) map(tofrom:Y[0:n]) num_threads(4)
  {
    int id = omp_get_thread_num();
    int nt = omp_get_num_threads();
    for (int i = id; i < n; i += nt) {
      Y[i] = a * X[i] + Y[i];
    }
  }
}
`

func main() {
	// 1. Compile: parse -> lower to dataflow IR -> schedule -> datapath.
	ctx := context.Background()
	prog, err := core.Build(ctx, src, core.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled kernel %q: %d hardware threads, %d dataflow graphs\n",
		prog.Kernel.Name, prog.Kernel.NumThreads, len(prog.Kernel.CollectGraphs()))

	// 2. Prepare host data.
	n := 256
	x := make([]float32, n)
	y := make([]float32, n)
	for i := range x {
		x[i] = float32(i)
		y[i] = 1
	}
	xb, yb := sim.NewFloatBuffer(x), sim.NewFloatBuffer(y)

	// 3. Run on the simulated accelerator.
	out, err := prog.Run(ctx, sim.Args{
		Floats:  map[string]float64{"a": 2},
		Ints:    map[string]int64{"n": int64(n)},
		Buffers: map[string]*sim.Buffer{"X": xb, "Y": yb},
	}, sim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 4. Check results (the simulator is functional, not just timed).
	got := yb.Floats()
	for i := range got {
		want := 2*float32(i) + 1
		if got[i] != want {
			log.Fatalf("Y[%d] = %v, want %v", i, got[i], want)
		}
	}
	fmt.Printf("result verified: Y = 2*X + Y for all %d elements\n", n)

	// 5. Inspect performance the way the paper does.
	r := out.Result
	fmt.Printf("execution: %d cycles (%.1f us at %.0f MHz), %d pipeline stalls\n",
		r.Cycles, 1e6*out.Seconds(r.Cycles), out.FmaxMHz, r.TotalStalls())
	bw := analysis.AvgBandwidthBytesPerCycle(out.Trace)
	fmt.Printf("memory: %.3f B/cycle (%.2f GB/s)\n", bw, analysis.BandwidthGBs(bw, out.FmaxMHz))
	fmt.Println("state timeline (R=Running .=Idle):")
	for _, row := range analysis.RenderStateTimeline(out.Trace, 72) {
		fmt.Println("  " + row)
	}

	// 6. Write the Paraver bundle.
	prv, err := out.WriteTrace("traces", "saxpy")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Paraver trace written to %s (+ .pcf/.row)\n", prv)
}
