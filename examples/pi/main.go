// Pi case study (paper §V-D): calls the MiniC pi() function end-to-end —
// the host interpreter computes `step`, launches the accelerator, reduces
// across threads through the hardware semaphore, and returns the estimate.
// Running it at increasing iteration counts reproduces Figs. 11-13: at
// small counts the sequential thread-start overhead dominates and threads
// barely overlap; at large counts all eight run in parallel and the
// sustained GFLOP/s rises accordingly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"strconv"
	"strings"

	"paravis/internal/core"
	"paravis/internal/host"
	"paravis/internal/paraver/analysis"
	"paravis/internal/sim"
	"paravis/internal/workloads"
)

func main() {
	stepsFlag := flag.String("steps", "100000,400000,1000000", "comma-separated iteration counts")
	traces := flag.String("traces", "", "if set, write Paraver bundles to this directory")
	flag.Parse()

	ctx := context.Background()
	prog, err := core.Build(ctx, workloads.PiSource, core.BuildOptions{Defines: workloads.PiDefines()})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== pi case study: infinite series on 8 hardware threads ==")
	fmt.Println("paper: 1M iters -> 0.146 GFLOP/s, 4M -> 0.556, 10M -> 1.507")
	fmt.Println()

	for _, f := range strings.Split(*stepsFlag, ",") {
		steps, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || steps <= 0 {
			log.Fatalf("bad steps %q", f)
		}
		// Call the MiniC function like the paper's host binary would.
		ret, out, err := prog.Call(ctx,
			[]host.Value{host.IntValue(int64(steps)), host.IntValue(8)},
			nil, sim.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		estimate := ret.AsFloat() / float64(steps)
		r := out.Result
		gflops := analysis.GFlops(out.Trace, out.FmaxMHz)
		fmt.Printf("steps=%-9d pi=%.6f (err %.2e)  %d cycles  %.3f GFLOP/s\n",
			steps, estimate, math.Abs(estimate-math.Pi), r.Cycles, gflops)
		fmt.Println("  thread activity (R=Running C=Critical S=Spinning .=Idle):")
		for _, row := range analysis.RenderStateTimeline(out.Trace, 88) {
			fmt.Println("    " + row)
		}
		if *traces != "" {
			prv, err := out.WriteTrace(*traces, fmt.Sprintf("pi_%d", steps))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  wrote %s\n", prv)
		}
		fmt.Println()
	}
}
