// Multi-FPGA case study — the paper's stated future work realized: "we
// plan to extend our infrastructure for communication between FPGAs in a
// multi-FPGA setup."
//
// A 1-D Jacobi stencil is partitioned across several simulated FPGA
// accelerators. Each sweep runs on every FPGA in parallel; afterwards
// neighboring FPGAs exchange halo cells over a modeled link. The merged
// Paraver trace contains one task per FPGA and a communication record per
// halo transfer, so board-level traffic and accelerator-internal execution
// appear in the same timeline.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"paravis/internal/cluster"
	"paravis/internal/paraver/analysis"
)

func main() {
	fpgas := flag.Int("fpgas", 2, "number of simulated FPGA boards")
	cells := flag.Int("cells", 64, "total stencil cells (divisible by fpgas)")
	steps := flag.Int("steps", 4, "Jacobi sweeps")
	linkLat := flag.Int64("linklat", 500, "FPGA-to-FPGA link latency in cycles")
	traces := flag.String("traces", "traces", "output directory for the Paraver bundle")
	flag.Parse()

	initial := make([]float32, *cells)
	for i := range initial {
		initial[i] = float32(i % 16)
	}

	cfg := cluster.DefaultConfig()
	cfg.FPGAs = *fpgas
	cfg.LinkLatency = *linkLat

	res, err := cluster.RunStencil(context.Background(), initial, *steps, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Verify against the host reference.
	want := cluster.Reference(initial, *steps)
	var maxd float64
	for i := range want {
		d := float64(res.Final[i] - want[i])
		if d < 0 {
			d = -d
		}
		if d > maxd {
			maxd = d
		}
	}
	fmt.Printf("== %d-cell Jacobi stencil on %d FPGAs, %d sweeps ==\n", *cells, *fpgas, *steps)
	fmt.Printf("result verified against host reference (max |diff| = %.2g)\n\n", maxd)

	fmt.Printf("makespan: %d cycles (%d compute + %d halo exchange)\n",
		res.TotalCycles, res.ComputeCycles, res.ExchangeCycles)
	fmt.Printf("halo transfers: %d messages over a %d-cycle link\n\n",
		res.HaloTransfers, cfg.LinkLatency)

	for f := 0; f < res.FPGAs; f++ {
		view := res.Trace.TaskView(f)
		prof := analysis.StateProfileOf(view)
		fmt.Printf("FPGA %d: %.1f%% of the timeline running (rest idle between sweeps)\n",
			f, 100*prof.TotalFraction[1])
	}
	fmt.Println("\nfirst halo exchanges in the trace (Paraver record type 3):")
	for i, c := range res.Trace.Comms {
		if i >= 4 {
			fmt.Printf("  ... %d more\n", len(res.Trace.Comms)-4)
			break
		}
		fmt.Printf("  sweep %d: FPGA%d -> FPGA%d, %dB, sent @%d, received @%d\n",
			c.Tag, c.SendTask, c.RecvTask, c.Size, c.SendTime, c.RecvTime)
	}

	prv, err := res.Streams.WriteBundle(*traces, "stencil_cluster")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmulti-task Paraver trace written to %s (+ .pcf/.row)\n", prv)
}
