// GEMM case study (paper §V-C): runs the five optimization stages of the
// matrix multiplication — naive with a critical section, lock-free work
// distribution, partially vectorized, BRAM-blocked, and double-buffered —
// and prints the analyses the paper reads off the Paraver views: state
// residency (Fig. 6), memory throughput over time (Fig. 7), the
// load/compute phase structure (Figs. 8-9) and the speedup table.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"paravis/internal/advisor"
	"paravis/internal/experiments"
)

func main() {
	dim := flag.Int("dim", 64, "matrix dimension (multiple of 16)")
	traces := flag.String("traces", "", "if set, write Paraver bundles to this directory")
	flag.Parse()

	opts := experiments.DefaultOptions()
	opts.GEMMDim = *dim

	fmt.Printf("== GEMM case study, %dx%d matrices, 8 hardware threads ==\n\n", *dim, *dim)

	ctx := context.Background()
	fig6, err := experiments.RunFig6(ctx, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fig6.Format())
	fmt.Println()

	speed, err := experiments.RunSpeedups(ctx, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(speed.Format())
	fmt.Println()

	phases, err := experiments.RunPhases(ctx, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(phases.Format())

	fmt.Println("\n== advisor: what the profile suggests for each version ==")
	for _, run := range speed.Runs {
		top := advisor.Top(advisor.AdviseProgram(run.Program, run.Out, advisor.Thresholds{}))
		fmt.Printf("%-22s -> [%s] %s\n", run.Version, top.Severity, top.Kind)
		fmt.Printf("%-22s    %s\n", "", top.Action())
	}

	if *traces != "" {
		for _, run := range speed.Runs {
			name := fmt.Sprintf("gemm_v%d", int(run.Version)+1)
			prv, err := run.Out.WriteTrace(*traces, name)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s (%s)\n", prv, run.Version)
		}
	}
}
