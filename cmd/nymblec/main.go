// Command nymblec compiles a MiniC+OpenMP source through the HLS flow and
// reports on the generated accelerator: kernel interface, dataflow graphs,
// pipeline schedule and estimated hardware footprint (with and without the
// profiling unit). The -json report uses the same versioned schema
// (internal/api) as the nymbled daemon's /v1/compile response, so both
// emit byte-identical JSON for the same input.
//
// With -vet it instead runs the compile-time diagnostics engine (OpenMP
// race/map checks, def-use lints, stall-lint and the IR/schedule
// verifiers) and exits 1 if any error-severity finding is reported.
//
// Usage:
//
//	nymblec [-D NAME=VALUE]... [-dump-ir] [-json] [-vet] file.mc
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"paravis/internal/api"
	"paravis/internal/cli"
	"paravis/internal/core"
	"paravis/internal/ir"
	"paravis/internal/staticcheck"
)

func main() {
	defines := cli.Defines{}
	flag.Var(defines, "D", "macro definition NAME=VALUE (repeatable)")
	dumpIR := flag.Bool("dump-ir", false, "print the dataflow IR")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	vet := flag.Bool("vet", false, "run compile-time diagnostics instead of building")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: nymblec [-D NAME=VALUE] [-dump-ir] [-json] [-vet] file.mc")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *vet {
		ds := core.Vet(flag.Arg(0), string(src), core.BuildOptions{Defines: defines})
		if *asJSON {
			if err := api.Encode(os.Stdout, ds); err != nil {
				fatal(err)
			}
		} else {
			for _, d := range ds {
				fmt.Println(d)
			}
			if len(ds) == 0 {
				fmt.Printf("%s: no findings\n", flag.Arg(0))
			}
		}
		for _, d := range ds {
			if d.Severity == staticcheck.SevError {
				os.Exit(1)
			}
		}
		return
	}
	p, err := core.Build(context.Background(), string(src), core.BuildOptions{Defines: defines})
	if err != nil {
		fatal(err)
	}
	if *dumpIR {
		fmt.Print(ir.Dump(p.Kernel))
	}

	rep := api.NewCompileReport(p)
	if *asJSON {
		if err := api.Encode(os.Stdout, rep); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("kernel %s: %d hardware threads, %d-lane vectors\n", rep.Kernel, rep.Threads, rep.VectorLanes)
	fmt.Printf("params: %s\n", strings.Join(rep.Params, ", "))
	fmt.Printf("maps:   %s\n", strings.Join(rep.Maps, ", "))
	if len(rep.Locals) > 0 {
		fmt.Printf("locals: %s\n", strings.Join(rep.Locals, ", "))
	}
	fmt.Println("graphs:")
	for _, g := range rep.Graphs {
		fmt.Printf("  %-16s %4d nodes, depth %3d, cond@%d, %d reordering stages\n",
			g.Name, g.Nodes, g.Depth, g.CondStage, g.Reordering)
	}
	fmt.Printf("area:   %d ALMs, %d registers, Fmax %.0f MHz\n",
		rep.Area.BaseALMs, rep.Area.BaseRegisters, rep.Area.BaseFmaxMHz)
	fmt.Printf("profiling overhead: regs +%.2f%%, ALMs +%.2f%%, Fmax -%.1f MHz\n",
		rep.Area.RegOverheadPct, rep.Area.ALMOverheadPct, rep.Area.FmaxDeltaMHz)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nymblec:", err)
	os.Exit(1)
}
