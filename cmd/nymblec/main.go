// Command nymblec compiles a MiniC+OpenMP source through the HLS flow and
// reports on the generated accelerator: kernel interface, dataflow graphs,
// pipeline schedule and estimated hardware footprint (with and without the
// profiling unit).
//
// With -vet it instead runs the compile-time diagnostics engine (OpenMP
// race/map checks, def-use lints, stall-lint and the IR/schedule
// verifiers) and exits 1 if any error-severity finding is reported.
//
// Usage:
//
//	nymblec [-D NAME=VALUE]... [-dump-ir] [-json] [-vet] file.mc
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"paravis/internal/area"
	"paravis/internal/core"
	"paravis/internal/ir"
	"paravis/internal/profile"
	"paravis/internal/staticcheck"
)

type defineFlags map[string]string

func (d defineFlags) String() string { return "" }
func (d defineFlags) Set(v string) error {
	name, val, found := strings.Cut(v, "=")
	if !found {
		val = "1"
	}
	if name == "" {
		return fmt.Errorf("empty define name")
	}
	d[name] = val
	return nil
}

type report struct {
	Kernel      string        `json:"kernel"`
	Threads     int           `json:"threads"`
	VectorLanes int           `json:"vector_lanes"`
	Params      []string      `json:"params"`
	Maps        []string      `json:"maps"`
	Locals      []string      `json:"locals"`
	Graphs      []graphReport `json:"graphs"`
	Area        areaReport    `json:"area"`
}

type graphReport struct {
	Name       string `json:"name"`
	Nodes      int    `json:"nodes"`
	Depth      int    `json:"pipeline_depth"`
	CondStage  int    `json:"cond_stage"`
	Reordering int    `json:"reordering_stages"`
}

type areaReport struct {
	BaseALMs       int     `json:"base_alms"`
	BaseRegisters  int     `json:"base_registers"`
	BaseFmaxMHz    float64 `json:"base_fmax_mhz"`
	RegOverheadPct float64 `json:"profiling_register_overhead_pct"`
	ALMOverheadPct float64 `json:"profiling_alm_overhead_pct"`
	FmaxDeltaMHz   float64 `json:"profiling_fmax_delta_mhz"`
}

func main() {
	defines := defineFlags{}
	flag.Var(defines, "D", "macro definition NAME=VALUE (repeatable)")
	dumpIR := flag.Bool("dump-ir", false, "print the dataflow IR")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	vet := flag.Bool("vet", false, "run compile-time diagnostics instead of building")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: nymblec [-D NAME=VALUE] [-dump-ir] [-json] [-vet] file.mc")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *vet {
		ds := core.Vet(flag.Arg(0), string(src), core.BuildOptions{Defines: defines})
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(ds); err != nil {
				fatal(err)
			}
		} else {
			for _, d := range ds {
				fmt.Println(d)
			}
			if len(ds) == 0 {
				fmt.Printf("%s: no findings\n", flag.Arg(0))
			}
		}
		for _, d := range ds {
			if d.Severity == staticcheck.SevError {
				os.Exit(1)
			}
		}
		return
	}
	p, err := core.Build(string(src), core.BuildOptions{Defines: defines})
	if err != nil {
		fatal(err)
	}
	if *dumpIR {
		fmt.Print(ir.Dump(p.Kernel))
	}

	o := area.Overhead(p.Kernel, p.Sched, profile.DefaultConfig(), area.DefaultCoefficients())
	rep := report{
		Kernel:      p.Kernel.Name,
		Threads:     p.Kernel.NumThreads,
		VectorLanes: p.Kernel.VectorLanes,
		Area: areaReport{
			BaseALMs:       o.Without.ALMs,
			BaseRegisters:  o.Without.Registers,
			BaseFmaxMHz:    o.Without.FmaxMHz,
			RegOverheadPct: o.RegisterPct(),
			ALMOverheadPct: o.ALMPct(),
			FmaxDeltaMHz:   o.FmaxDeltaMHz(),
		},
	}
	for _, prm := range p.Kernel.Params {
		kind := "int"
		if prm.Pointer {
			kind = "ptr"
		} else if prm.Float {
			kind = "float"
		}
		rep.Params = append(rep.Params, fmt.Sprintf("%s:%s", prm.Name, kind))
	}
	for _, m := range p.Kernel.Maps {
		rep.Maps = append(rep.Maps, fmt.Sprintf("%s(%s)", m.Dir, m.Name))
	}
	for _, l := range p.Kernel.Locals {
		rep.Locals = append(rep.Locals, fmt.Sprintf("%s[%d elems x %dB]", l.Name, l.NumElems, l.ElemWords*4))
	}
	for _, g := range p.Kernel.CollectGraphs() {
		gs := p.Sched.ByGraph[g]
		rep.Graphs = append(rep.Graphs, graphReport{
			Name: g.Name, Nodes: len(g.Nodes), Depth: gs.Depth,
			CondStage: gs.CondStage, Reordering: gs.NumReordering,
		})
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("kernel %s: %d hardware threads, %d-lane vectors\n", rep.Kernel, rep.Threads, rep.VectorLanes)
	fmt.Printf("params: %s\n", strings.Join(rep.Params, ", "))
	fmt.Printf("maps:   %s\n", strings.Join(rep.Maps, ", "))
	if len(rep.Locals) > 0 {
		fmt.Printf("locals: %s\n", strings.Join(rep.Locals, ", "))
	}
	fmt.Println("graphs:")
	for _, g := range rep.Graphs {
		fmt.Printf("  %-16s %4d nodes, depth %3d, cond@%d, %d reordering stages\n",
			g.Name, g.Nodes, g.Depth, g.CondStage, g.Reordering)
	}
	fmt.Printf("area:   %d ALMs, %d registers, Fmax %.0f MHz\n",
		rep.Area.BaseALMs, rep.Area.BaseRegisters, rep.Area.BaseFmaxMHz)
	fmt.Printf("profiling overhead: regs +%.2f%%, ALMs +%.2f%%, Fmax -%.1f MHz\n",
		rep.Area.RegOverheadPct, rep.Area.ALMOverheadPct, rep.Area.FmaxDeltaMHz)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nymblec:", err)
	os.Exit(1)
}
