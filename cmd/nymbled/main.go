// Command nymbled serves the nymble tool family over HTTP/JSON:
//
//	POST /v1/compile              compile report (nymblec -json)
//	POST /v1/vet                  compile-time diagnostics (nymblevet -json)
//	POST /v1/perf                 static performance bounds (nymbleperf -json)
//	POST /v1/run                  enqueue a simulation job (add "wait":true for sync)
//	GET  /v1/jobs/{id}            poll a job document
//	DELETE /v1/jobs/{id}          cancel a queued or running job
//	GET  /v1/jobs/{id}/trace/{f}  download trace.prv, trace.prv.gz, trace.pcf, trace.row
//	GET  /healthz                 liveness
//	GET  /metrics                 Prometheus text: requests, latency, cache, queue
//
// Responses marshal the same internal/api structs as the CLIs' -json
// modes, so daemon and CLI output are byte-identical for the same
// input; trace downloads stream the exact bytes nymblesim writes to
// disk. Builds go through a content-addressed compile cache (see the
// X-Nymbled-Cache response header), simulations run on a bounded
// worker pool, and SIGINT/SIGTERM drains in-flight jobs before exit.
//
// Usage:
//
//	nymbled [-addr :8080] [-j N] [-maxcycles N] [-pprof addr]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"paravis/internal/server"
	"paravis/internal/sim"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("j", 0, "max simulations running concurrently (0 = GOMAXPROCS)")
	maxCycles := flag.Int64("maxcycles", 0, "default simulation cycle budget (0 = library default)")
	drain := flag.Duration("drain", 30*time.Second, "max time to drain in-flight jobs on shutdown")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; off by default)")
	flag.Parse()

	cfg := sim.DefaultConfig()
	if *maxCycles > 0 {
		cfg.MaxCycles = *maxCycles
	}
	srv := server.New(server.Options{Workers: *workers, SimCfg: cfg})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Profiling endpoint on its own listener, so the debug surface never
	// shares a port with the service API. Off unless -pprof is given.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			fmt.Fprintf(os.Stderr, "nymbled: pprof on %s\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "nymbled: pprof:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "nymbled: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "nymbled: shutting down, draining jobs")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "nymbled: http shutdown:", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "nymbled: job drain:", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nymbled:", err)
	os.Exit(1)
}
