// Command nymbled serves the nymble tool family over HTTP/JSON:
//
//	POST /v1/compile              compile report (nymblec -json)
//	POST /v1/vet                  compile-time diagnostics (nymblevet -json)
//	POST /v1/perf                 static performance bounds (nymbleperf -json)
//	POST /v1/run                  enqueue a simulation job (add "wait":true for sync)
//	GET  /v1/jobs/{id}            poll a job document
//	DELETE /v1/jobs/{id}          cancel a queued or running job
//	GET  /v1/jobs/{id}/trace/{f}  download trace.prv, trace.prv.gz, trace.pcf, trace.row
//	GET  /healthz                 liveness + cache/store/coalescer counters
//	GET  /metrics                 Prometheus text: requests, latency, cache, store, queue
//
// Responses marshal the same internal/api structs as the CLIs' -json
// modes, so daemon and CLI output are byte-identical for the same
// input; trace downloads stream the exact bytes nymblesim writes to
// disk. Builds go through a content-addressed compile cache (see the
// X-Nymbled-Cache response header), simulations run on a bounded
// worker pool, and SIGINT/SIGTERM drains in-flight jobs before exit.
//
// With -store DIR, finished runs persist to a digest-keyed on-disk
// artifact store: a repeat POST /v1/run — across restarts too — is a
// disk read, not a simulation (X-Nymbled-Store: hit). Identical
// in-flight runs coalesce onto one simulation (-coalesce-window /
// -coalesce-max), and -maxqueue sheds queue overload with 429.
//
// Fleet mode: `nymbled -dispatch` serves no simulations itself —
// instead it routes the whole /v1 API across workers that register
// with it. A worker joins with `-join http://dispatcher -advertise
// http://me -node name`. Registration is guarded by a shared secret
// (-fleet-token / $NYMBLED_FLEET_TOKEN on both sides); running a
// dispatcher without one is only safe on a trusted network. Run
// requests route by digest affinity with retries on worker failure;
// -rps/-burst rate-limit per tenant (X-Nymbled-Tenant header) at the
// dispatcher.
//
// Usage:
//
//	nymbled [-addr :8080] [-j N] [-maxcycles N] [-pprof addr]
//	        [-store DIR] [-store-max-bytes N] [-coalesce-window D]
//	        [-coalesce-max N] [-maxqueue N] [-node NAME]
//	        [-join URL [-advertise URL] [-fleet-token T]]
//	nymbled -dispatch [-addr :8080] [-rps N] [-burst N] [-fleet-token T]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"paravis/internal/fleet"
	"paravis/internal/server"
	"paravis/internal/sim"
	"paravis/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("j", 0, "max simulations running concurrently (0 = GOMAXPROCS)")
	maxCycles := flag.Int64("maxcycles", 0, "default simulation cycle budget (0 = library default)")
	drain := flag.Duration("drain", 30*time.Second, "max time to drain in-flight jobs on shutdown")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; off by default)")
	storeDir := flag.String("store", "", "persist finished run artifacts in this directory (off by default)")
	storeMax := flag.Int64("store-max-bytes", 0, "artifact store byte budget, LRU-evicted past it (0 = 1 GiB)")
	coalesceWindow := flag.Duration("coalesce-window", 100*time.Millisecond, "how long a finished run keeps coalescing identical requests")
	coalesceMax := flag.Int("coalesce-max", 0, "max requests sharing one in-flight run, 429 past it (0 = unlimited)")
	maxQueue := flag.Int("maxqueue", 0, "max runs queued for a worker slot, 429 past it (0 = unlimited)")
	node := flag.String("node", "", "node name: makes job IDs fleet-unique and labels /healthz")
	dispatch := flag.Bool("dispatch", false, "run as a fleet dispatcher instead of a worker")
	join := flag.String("join", "", "dispatcher URL to register with (worker mode)")
	advertise := flag.String("advertise", "", "URL the dispatcher should reach this worker at (default http://localhost<addr>)")
	rps := flag.Float64("rps", 0, "dispatcher: per-tenant requests per second (0 = no rate limit)")
	burst := flag.Int("burst", 0, "dispatcher: per-tenant burst size (0 = ceil(rps))")
	fleetToken := flag.String("fleet-token", os.Getenv("NYMBLED_FLEET_TOKEN"),
		"shared secret for worker registration (dispatcher requires it, worker presents it; default $NYMBLED_FLEET_TOKEN)")
	flag.Parse()

	if *dispatch {
		runDispatcher(*addr, *rps, *burst, *fleetToken, *drain)
		return
	}

	cfg := sim.DefaultConfig()
	if *maxCycles > 0 {
		cfg.MaxCycles = *maxCycles
	}
	opts := server.Options{
		Workers:        *workers,
		SimCfg:         cfg,
		CoalesceWindow: *coalesceWindow,
		CoalesceMax:    *coalesceMax,
		MaxQueue:       *maxQueue,
		NodeID:         *node,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, *storeMax)
		if err != nil {
			fatal(err)
		}
		opts.Store = st
		fmt.Fprintf(os.Stderr, "nymbled: artifact store at %s (%d entries)\n", *storeDir, st.Stats().Entries)
	}
	srv := server.New(opts)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Profiling endpoint on its own listener, so the debug surface never
	// shares a port with the service API. Off unless -pprof is given.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			fmt.Fprintf(os.Stderr, "nymbled: pprof on %s\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "nymbled: pprof:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Worker mode: announce to the dispatcher now and keep heartbeating,
	// so a restarted dispatcher relearns the fleet by itself.
	if *join != "" {
		adv := *advertise
		if adv == "" {
			adv = "http://localhost" + *addr
		}
		go func() {
			if err := fleet.Register(ctx, nil, *join, adv, *fleetToken); err != nil {
				fmt.Fprintln(os.Stderr, "nymbled: fleet register:", err)
			} else {
				fmt.Fprintf(os.Stderr, "nymbled: registered with %s as %s\n", *join, adv)
			}
			fleet.Heartbeat(ctx, *join, adv, *fleetToken, 5*time.Second)
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "nymbled: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "nymbled: shutting down, draining jobs")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "nymbled: http shutdown:", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "nymbled: job drain:", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

// runDispatcher serves the fleet front end until SIGINT/SIGTERM.
func runDispatcher(addr string, rps float64, burst int, token string, drain time.Duration) {
	if token == "" {
		fmt.Fprintln(os.Stderr, "nymbled: warning: no -fleet-token; worker registration is open to anyone who can reach this dispatcher")
	}
	d := fleet.NewDispatcher(fleet.Options{TenantRPS: rps, TenantBurst: burst, RegisterToken: token})
	httpSrv := &http.Server{Addr: addr, Handler: d.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "nymbled: dispatcher listening on %s\n", addr)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "nymbled: dispatcher shutting down")
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "nymbled: http shutdown:", err)
	}
	d.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nymbled:", err)
	os.Exit(1)
}
