// Command prv2stats parses a Paraver .prv trace and prints the data behind
// the views the paper uses: per-thread state residency (the state view),
// memory throughput over time, and compute performance over time.
//
// Usage:
//
//	prv2stats [-bins N] [-freq MHz] [-timeline] trace.prv
package main

import (
	"flag"
	"fmt"
	"os"

	"paravis/internal/paraver"
	"paravis/internal/paraver/analysis"
)

func main() {
	bins := flag.Int("bins", 64, "number of time bins for event series")
	freq := flag.Float64("freq", 140, "accelerator clock in MHz for GB/s / GFLOP/s conversion")
	timeline := flag.Bool("timeline", true, "render the ASCII state timeline")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: prv2stats [-bins N] [-freq MHz] [-timeline] trace.prv")
		os.Exit(2)
	}
	tr, err := paraver.ParsePRVFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if err := tr.Validate(); err != nil {
		fatal(err)
	}

	fmt.Printf("trace: %d task(s) x %d threads, %d cycles\n\n", tr.NumTasks(), tr.NumThreads, tr.EndTime)

	if tr.NumTasks() > 1 {
		for task := 0; task < tr.NumTasks(); task++ {
			view := tr.TaskView(task)
			p := analysis.StateProfileOf(view)
			fmt.Printf("task %d (FPGA %d): %.1f%% running, %.1f%% idle\n",
				task+1, task+1, 100*p.TotalFraction[1], 100*p.TotalFraction[0])
		}
		if len(tr.Comms) > 0 {
			var bytes int64
			var maxLat int64
			for _, c := range tr.Comms {
				bytes += c.Size
				if l := c.RecvTime - c.SendTime; l > maxLat {
					maxLat = l
				}
			}
			fmt.Printf("communication: %d records, %d bytes, max latency %d cycles\n",
				len(tr.Comms), bytes, maxLat)
		}
		fmt.Println()
	}

	if tr.NumTasks() == 1 {
		prof := analysis.StateProfileOf(tr)
		fmt.Println("state residency (% of execution time):")
		fmt.Printf("%-8s %10s %10s %10s %10s\n", "thread", "Idle", "Running", "Critical", "Spinning")
		for t := 0; t < prof.NumThreads; t++ {
			fmt.Printf("T%-7d %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n", t,
				100*prof.Fraction[t][0], 100*prof.Fraction[t][1],
				100*prof.Fraction[t][2], 100*prof.Fraction[t][3])
		}
		fmt.Printf("%-8s %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n\n", "all",
			100*prof.TotalFraction[0], 100*prof.TotalFraction[1],
			100*prof.TotalFraction[2], 100*prof.TotalFraction[3])
	}

	if *timeline {
		for task := 0; task < tr.NumTasks(); task++ {
			view := tr
			if tr.NumTasks() > 1 {
				view = tr.TaskView(task)
				fmt.Printf("state timeline, FPGA %d (R=Running C=Critical S=Spinning .=Idle):\n", task+1)
			} else {
				fmt.Println("state timeline (R=Running C=Critical S=Spinning .=Idle):")
			}
			for _, row := range analysis.RenderStateTimeline(view, 96) {
				fmt.Println("  " + row)
			}
			fmt.Println()
		}
	}

	binWidth := tr.EndTime / int64(*bins)
	if binWidth < 1 {
		binWidth = 1
	}
	mem := analysis.MemorySeries(tr, binWidth)
	fp := analysis.FlopSeries(tr, binWidth)
	stalls := analysis.EventSeries(tr, paraver.EventStalls, binWidth)
	fmt.Printf("memory throughput |%s|\n", analysis.RenderSeries(mem, *bins))
	fmt.Printf("compute (FLOPs)   |%s|\n", analysis.RenderSeries(fp, *bins))
	fmt.Printf("pipeline stalls   |%s|\n\n", analysis.RenderSeries(stalls, *bins))

	bw := analysis.AvgBandwidthBytesPerCycle(tr)
	fmt.Printf("totals: %d B read, %d B written, %d FLOPs, %d stalls\n",
		analysis.Totals(tr, paraver.EventReadBytes),
		analysis.Totals(tr, paraver.EventWriteBytes),
		analysis.Totals(tr, paraver.EventFpOps),
		analysis.Totals(tr, paraver.EventStalls))
	fmt.Printf("avg bandwidth: %.3f B/cycle = %.2f GB/s at %.0f MHz\n",
		bw, analysis.BandwidthGBs(bw, *freq), *freq)
	fmt.Printf("sustained compute: %.3f GFLOP/s at %.0f MHz\n",
		analysis.GFlops(tr, *freq), *freq)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prv2stats:", err)
	os.Exit(1)
}
