// Command prv2stats parses a Paraver .prv trace and prints the data behind
// the views the paper uses: per-thread state residency (the state view),
// memory throughput over time, and compute performance over time.
//
// The trace streams through a single-pass aggregator line by line, so
// traces larger than RAM work in bounded memory. Gzip-compressed traces
// (.prv.gz, as written by nymblesim -gzip) decompress transparently.
//
// Usage:
//
//	prv2stats [-bins N] [-freq MHz] [-timeline] trace.prv[.gz]
package main

import (
	"flag"
	"fmt"
	"os"

	"paravis/internal/paraver"
	"paravis/internal/paraver/analysis"
)

func main() {
	bins := flag.Int("bins", 64, "number of time bins for event series")
	freq := flag.Float64("freq", 140, "accelerator clock in MHz for GB/s / GFLOP/s conversion")
	timeline := flag.Bool("timeline", true, "render the ASCII state timeline")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: prv2stats [-bins N] [-freq MHz] [-timeline] trace.prv[.gz]")
		os.Exit(2)
	}
	r, err := paraver.OpenPRV(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	st := analysis.NewStreamStats(96, *bins)
	if err := paraver.ScanPRV(r, st); err != nil {
		r.Close()
		fatal(err)
	}
	if err := r.Close(); err != nil {
		fatal(err)
	}
	tasks := st.Hdr.Tasks

	fmt.Printf("trace: %d task(s) x %d threads, %d cycles\n\n", tasks, st.Hdr.NumThreads, st.Hdr.EndTime)

	if tasks > 1 {
		for task := 0; task < tasks; task++ {
			p := st.StateProfileTask(task)
			fmt.Printf("task %d (FPGA %d): %.1f%% running, %.1f%% idle\n",
				task+1, task+1, 100*p.TotalFraction[1], 100*p.TotalFraction[0])
		}
		if st.CommCount > 0 {
			fmt.Printf("communication: %d records, %d bytes, max latency %d cycles\n",
				st.CommCount, st.CommBytes, st.CommMaxLatency)
		}
		fmt.Println()
	}

	if tasks == 1 {
		prof := st.StateProfileTask(0)
		fmt.Println("state residency (% of execution time):")
		fmt.Printf("%-8s %10s %10s %10s %10s\n", "thread", "Idle", "Running", "Critical", "Spinning")
		for t := 0; t < prof.NumThreads; t++ {
			fmt.Printf("T%-7d %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n", t,
				100*prof.Fraction[t][0], 100*prof.Fraction[t][1],
				100*prof.Fraction[t][2], 100*prof.Fraction[t][3])
		}
		fmt.Printf("%-8s %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n\n", "all",
			100*prof.TotalFraction[0], 100*prof.TotalFraction[1],
			100*prof.TotalFraction[2], 100*prof.TotalFraction[3])
	}

	if *timeline {
		for task := 0; task < tasks; task++ {
			if tasks > 1 {
				fmt.Printf("state timeline, FPGA %d (R=Running C=Critical S=Spinning .=Idle):\n", task+1)
			} else {
				fmt.Println("state timeline (R=Running C=Critical S=Spinning .=Idle):")
			}
			for _, row := range st.TimelineTask(task) {
				fmt.Println("  " + row)
			}
			fmt.Println()
		}
	}

	fmt.Printf("memory throughput |%s|\n", analysis.RenderSeries(st.MemSeries(), *bins))
	fmt.Printf("compute (FLOPs)   |%s|\n", analysis.RenderSeries(st.FlopSeries(), *bins))
	fmt.Printf("pipeline stalls   |%s|\n\n", analysis.RenderSeries(st.StallSeries(), *bins))

	bw := st.AvgBandwidthBytesPerCycle()
	fmt.Printf("totals: %d B read, %d B written, %d FLOPs, %d stalls\n",
		st.Total(paraver.EventReadBytes),
		st.Total(paraver.EventWriteBytes),
		st.Total(paraver.EventFpOps),
		st.Total(paraver.EventStalls))
	fmt.Printf("avg bandwidth: %.3f B/cycle = %.2f GB/s at %.0f MHz\n",
		bw, analysis.BandwidthGBs(bw, *freq), *freq)
	fmt.Printf("sustained compute: %.3f GFLOP/s at %.0f MHz\n",
		st.GFlops(*freq), *freq)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prv2stats:", err)
	os.Exit(1)
}
