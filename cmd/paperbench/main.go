// Command paperbench regenerates every table and figure of the paper's
// evaluation section and prints paper-vs-measured comparisons.
//
// Usage:
//
//	paperbench [-exp all|overhead|fig6|fig7|speedup|fig8|fig9|pi|threads|bounds]
//	           [-dim N] [-pisteps a,b,c] [-quiet] [-j N] [-benchjson path]
//
// -exp bounds runs the static-bounds cross-validation (E10); it is not
// part of -exp all so the default output stays byte-identical across
// releases. -benchjson records each experiment's wall time and allocation
// profile as machine-readable JSON (BENCH_4.json in CI).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"paravis/internal/experiments"
	"paravis/internal/parallel"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, overhead, fig6, fig7, speedup, fig8, fig9, pi, threads, bounds")
	dim := flag.Int("dim", 64, "GEMM matrix dimension (multiple of 16)")
	piSteps := flag.String("pisteps", "102400,409600,1024000", "comma-separated pi iteration counts")
	quiet := flag.Bool("quiet", false, "suppress ASCII timeline/sparkline views")
	workers := flag.Int("j", 0, "max design points simulated concurrently (0 = GOMAXPROCS)")
	benchJSON := flag.String("benchjson", "", "write per-experiment timing/allocation stats as JSON to this path")
	flag.Parse()

	if *workers > 0 {
		parallel.SetDefaultWorkers(*workers)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts := experiments.DefaultOptions()
	opts.GEMMDim = *dim
	opts.Quiet = *quiet
	opts.Workers = *workers
	opts.PiSteps = nil
	for _, f := range strings.Split(*piSteps, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			fatal(fmt.Errorf("bad -pisteps entry %q", f))
		}
		opts.PiSteps = append(opts.PiSteps, n)
	}

	var bench []benchRecord
	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		rec, err := timed(name, fn)
		if err != nil {
			fatal(err)
		}
		bench = append(bench, rec)
		fmt.Println()
	}

	run("overhead", func() error {
		r, err := experiments.RunOverhead(ctx, opts.Threads, opts.Workers)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		return nil
	})
	run("fig6", func() error {
		r, err := experiments.RunFig6(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		return nil
	})
	speedups := func() error {
		r, err := experiments.RunSpeedups(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		return nil
	}
	switch *exp {
	case "all", "speedup":
		run("speedup", speedups)
	case "fig7":
		run("fig7", speedups)
	}
	run("fig8", func() error {
		r, err := experiments.RunPhases(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		return nil
	})
	if *exp == "fig9" {
		run("fig9", func() error {
			r, err := experiments.RunPhases(ctx, opts)
			if err != nil {
				return err
			}
			fmt.Print(r.Format())
			return nil
		})
	}
	run("pi", func() error {
		r, err := experiments.RunPi(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		return nil
	})
	run("threads", func() error {
		r, err := experiments.RunThreadScaling(ctx, opts, []int{1, 2, 4, 8, 12, 16})
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		return nil
	})
	// The bounds cross-validation is opt-in only: keeping it out of
	// "-exp all" keeps the default trace byte-identical to the seed.
	if *exp == "bounds" {
		run("bounds", func() error {
			r, err := experiments.RunBounds(ctx, opts)
			if err != nil {
				return err
			}
			fmt.Print(r.Format())
			return nil
		})
	}
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, bench); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperbench:", err)
	os.Exit(1)
}

// benchRecord is one experiment's timing in the go-bench-like JSON
// schema (name, iterations, ns/op, allocs/op, bytes/op).
type benchRecord struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// timed runs one experiment once, recording wall time and the allocation
// deltas around it.
func timed(name string, fn func() error) (benchRecord, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return benchRecord{
		Name:        name,
		Iterations:  1,
		NsPerOp:     elapsed.Nanoseconds(),
		AllocsPerOp: int64(after.Mallocs - before.Mallocs),
		BytesPerOp:  int64(after.TotalAlloc - before.TotalAlloc),
	}, err
}

// writeBenchJSON writes the recorded experiment timings.
func writeBenchJSON(path string, recs []benchRecord) error {
	report := struct {
		Version    int           `json:"version"`
		Benchmarks []benchRecord `json:"benchmarks"`
	}{Version: 1, Benchmarks: recs}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
