// Command paperbench regenerates every table and figure of the paper's
// evaluation section and prints paper-vs-measured comparisons.
//
// Usage:
//
//	paperbench [-exp all|overhead|fig6|fig7|speedup|fig8|fig9|pi|threads|bounds|serving|depend]
//	           [-dim N] [-pisteps a,b,c] [-quiet] [-j N] [-interp]
//	           [-benchjson path]
//
// -exp bounds runs the static-bounds cross-validation (E10); -exp
// serving measures the nymbled serving path (E11: cold-miss vs
// warm-hit vs coalesced-burst latency through the persistent artifact
// store); -exp depend runs the dependence-engine cross-validation
// (E12: static RecMII and dependence verdicts against the simulator's
// measured per-loop initiation intervals); -exp optimize runs the
// transformation-search study (E13: the autotuner rediscovering the
// §V-C ladder from the naive GEMM, tabulated against the hand-written
// versions, with -optbudget capping the simulator confirmations).
// None of the four is part of -exp all so the default output stays
// byte-identical across releases. -interp forces the interpreted
// per-op engine instead of the specialized stage closures (the output
// must be byte-identical either way — the interpreter is the
// differential-testing oracle). -benchjson records each experiment's
// wall time and allocation profile as machine-readable JSON (BENCH_6
// and BENCH_7 in CI); in that mode every simulating experiment is
// timed under both engines, so the file carries per-workload before
// (interp) and after (specialized) wall times, and -exp serving emits
// one record per serving phase (serving/cold, serving/warm,
// serving/burst).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"paravis/internal/experiments"
	"paravis/internal/parallel"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, overhead, fig6, fig7, speedup, fig8, fig9, pi, threads, bounds, serving, depend, optimize")
	dim := flag.Int("dim", 64, "GEMM matrix dimension (multiple of 16)")
	piSteps := flag.String("pisteps", "102400,409600,1024000", "comma-separated pi iteration counts")
	quiet := flag.Bool("quiet", false, "suppress ASCII timeline/sparkline views")
	workers := flag.Int("j", 0, "max design points simulated concurrently (0 = GOMAXPROCS)")
	interp := flag.Bool("interp", false, "force the interpreted engine (per-op dispatch) instead of specialized stage closures")
	benchJSON := flag.String("benchjson", "", "write per-experiment timing/allocation stats as JSON to this path")
	optBudget := flag.Int("optbudget", 32, "simulator-confirmation budget for -exp optimize")
	flag.Parse()

	if *workers > 0 {
		parallel.SetDefaultWorkers(*workers)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts := experiments.DefaultOptions()
	opts.GEMMDim = *dim
	opts.Quiet = *quiet
	opts.Workers = *workers
	opts.SimCfg.Interp = *interp
	opts.PiSteps = nil
	for _, f := range strings.Split(*piSteps, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			fatal(fmt.Errorf("bad -pisteps entry %q", f))
		}
		opts.PiSteps = append(opts.PiSteps, n)
	}

	var bench []benchRecord
	// run executes one experiment, printing its formatted report. With
	// -benchjson the experiment is additionally re-run (silently) under
	// the other engine, so the JSON records before/after pairs:
	// "<name>/interp" is the interpreted (pre-specialization) time,
	// "<name>/spec" the specialized one. Compiles are shared through the
	// experiments build cache, so the rerun only re-simulates.
	run := func(name string, sims bool, fn func(o experiments.Options) (string, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		recName := name
		if sims {
			recName = name + engineSuffix(opts.SimCfg.Interp)
		}
		rec, err := timed(recName, func() error {
			out, err := fn(opts)
			if err != nil {
				return err
			}
			fmt.Print(out)
			return nil
		})
		if err != nil {
			fatal(err)
		}
		bench = append(bench, rec)
		if *benchJSON != "" && sims {
			other := opts
			other.SimCfg.Interp = !opts.SimCfg.Interp
			rec2, err := timed(name+engineSuffix(other.SimCfg.Interp), func() error {
				_, err := fn(other)
				return err
			})
			if err != nil {
				fatal(err)
			}
			bench = append(bench, rec2)
		}
		fmt.Println()
	}

	run("overhead", false, func(o experiments.Options) (string, error) {
		r, err := experiments.RunOverhead(ctx, o.Threads, o.Workers)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	})
	run("fig6", true, func(o experiments.Options) (string, error) {
		r, err := experiments.RunFig6(ctx, o)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	})
	speedups := func(o experiments.Options) (string, error) {
		r, err := experiments.RunSpeedups(ctx, o)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	}
	switch *exp {
	case "all", "speedup":
		run("speedup", true, speedups)
	case "fig7":
		run("fig7", true, speedups)
	}
	phases := func(o experiments.Options) (string, error) {
		r, err := experiments.RunPhases(ctx, o)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	}
	run("fig8", true, phases)
	if *exp == "fig9" {
		run("fig9", true, phases)
	}
	run("pi", true, func(o experiments.Options) (string, error) {
		r, err := experiments.RunPi(ctx, o)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	})
	run("threads", true, func(o experiments.Options) (string, error) {
		r, err := experiments.RunThreadScaling(ctx, o, []int{1, 2, 4, 8, 12, 16})
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	})
	// The bounds cross-validation is opt-in only: keeping it out of
	// "-exp all" keeps the default trace byte-identical to the seed.
	if *exp == "bounds" {
		run("bounds", true, func(o experiments.Options) (string, error) {
			r, err := experiments.RunBounds(ctx, o)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		})
	}
	// The dependence cross-validation (E12) is opt-in for the same
	// reason as bounds: the default trace stays byte-identical.
	if *exp == "depend" {
		run("depend", true, func(o experiments.Options) (string, error) {
			r, err := experiments.RunDepend(ctx, o)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		})
	}
	// The transformation-search study (E13) is opt-in like bounds; its
	// record set carries the search wall time plus the budget contract
	// (budget vs sims actually spent) that benchgate's -ratio asserts on.
	if *exp == "optimize" {
		rec, err := timed("optimize/search", func() error {
			res, err := experiments.RunOptimize(ctx, opts, *optBudget)
			if err != nil {
				return err
			}
			fmt.Print(res.Format())
			bench = append(bench,
				benchRecord{Name: "optimize/budget", Iterations: 1, NsPerOp: int64(*optBudget)},
				benchRecord{Name: "optimize/sims", Iterations: 1, NsPerOp: int64(res.Found.SimsRun)},
			)
			return nil
		})
		if err != nil {
			fatal(err)
		}
		bench = append(bench, rec)
		fmt.Println()
	}
	// The serving-path benchmark (E11) is opt-in like bounds, and unlike
	// the others its record set is per-phase: the cold/warm ratio is what
	// benchgate's -ratio flag asserts on.
	if *exp == "serving" {
		res, err := experiments.RunServing(ctx, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Format())
		fmt.Println()
		bench = append(bench,
			benchRecord{Name: "serving/cold", Iterations: 1, NsPerOp: res.Cold.Nanoseconds()},
			benchRecord{Name: "serving/warm", Iterations: res.WarmRuns, NsPerOp: res.Warm.Nanoseconds()},
			benchRecord{Name: "serving/burst", Iterations: res.BurstSize, NsPerOp: res.Burst.Nanoseconds()},
		)
	}
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, bench); err != nil {
			fatal(err)
		}
	}
}

func engineSuffix(interp bool) string {
	if interp {
		return "/interp"
	}
	return "/spec"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperbench:", err)
	os.Exit(1)
}

// benchRecord is one experiment's timing in the go-bench-like JSON
// schema (name, iterations, ns/op, allocs/op, bytes/op).
type benchRecord struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// timed runs one experiment once, recording wall time and the allocation
// deltas around it.
func timed(name string, fn func() error) (benchRecord, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return benchRecord{
		Name:        name,
		Iterations:  1,
		NsPerOp:     elapsed.Nanoseconds(),
		AllocsPerOp: int64(after.Mallocs - before.Mallocs),
		BytesPerOp:  int64(after.TotalAlloc - before.TotalAlloc),
	}, err
}

// writeBenchJSON writes the recorded experiment timings.
func writeBenchJSON(path string, recs []benchRecord) error {
	report := struct {
		Version    int           `json:"version"`
		Benchmarks []benchRecord `json:"benchmarks"`
	}{Version: 3, Benchmarks: recs}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
