// Command paperbench regenerates every table and figure of the paper's
// evaluation section and prints paper-vs-measured comparisons.
//
// Usage:
//
//	paperbench [-exp all|overhead|fig6|fig7|speedup|fig8|fig9|pi|threads]
//	           [-dim N] [-pisteps a,b,c] [-quiet] [-j N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"paravis/internal/experiments"
	"paravis/internal/parallel"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, overhead, fig6, fig7, speedup, fig8, fig9, pi, threads")
	dim := flag.Int("dim", 64, "GEMM matrix dimension (multiple of 16)")
	piSteps := flag.String("pisteps", "102400,409600,1024000", "comma-separated pi iteration counts")
	quiet := flag.Bool("quiet", false, "suppress ASCII timeline/sparkline views")
	workers := flag.Int("j", 0, "max design points simulated concurrently (0 = GOMAXPROCS)")
	flag.Parse()

	if *workers > 0 {
		parallel.SetDefaultWorkers(*workers)
	}
	opts := experiments.DefaultOptions()
	opts.GEMMDim = *dim
	opts.Quiet = *quiet
	opts.Workers = *workers
	opts.PiSteps = nil
	for _, f := range strings.Split(*piSteps, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			fatal(fmt.Errorf("bad -pisteps entry %q", f))
		}
		opts.PiSteps = append(opts.PiSteps, n)
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	run("overhead", func() error {
		r, err := experiments.RunOverhead(opts.Threads, opts.Workers)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		return nil
	})
	run("fig6", func() error {
		r, err := experiments.RunFig6(opts)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		return nil
	})
	speedups := func() error {
		r, err := experiments.RunSpeedups(opts)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		return nil
	}
	switch *exp {
	case "all", "speedup":
		run("speedup", speedups)
	case "fig7":
		run("fig7", speedups)
	}
	run("fig8", func() error {
		r, err := experiments.RunPhases(opts)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		return nil
	})
	if *exp == "fig9" {
		run("fig9", func() error {
			r, err := experiments.RunPhases(opts)
			if err != nil {
				return err
			}
			fmt.Print(r.Format())
			return nil
		})
	}
	run("pi", func() error {
		r, err := experiments.RunPi(opts)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		return nil
	})
	run("threads", func() error {
		r, err := experiments.RunThreadScaling(opts, []int{1, 2, 4, 8, 12, 16})
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		return nil
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperbench:", err)
	os.Exit(1)
}
