// Command fleetsweep drives the six-seed byte-identity sweep through a
// running nymbled fleet: every seed workload (five GEMM versions plus
// pi) is POSTed to the dispatcher twice, and each served trace.prv must
// be byte-identical to the bundle the in-process library (the same
// write path as nymblesim) produces for that request. The repeat pass
// proves artifact reuse: with per-worker stores, at least one repeat
// must be a store hit or a coalesced share, never a fresh simulation
// with different bytes.
//
// CI boots one dispatcher and two workers, kills a worker mid-sweep,
// and fleetsweep must still exit 0 — the dispatcher's retry path makes
// a dead node invisible to the client.
//
// Usage:
//
//	fleetsweep -dispatcher http://localhost:8080 [-repeat] [-timeout D]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"paravis/internal/api"
	"paravis/internal/core"
	"paravis/internal/sim"
	"paravis/internal/workloads"
)

func main() {
	dispatcher := flag.String("dispatcher", "http://localhost:8080", "dispatcher (or single nymbled) base URL")
	repeat := flag.Bool("repeat", true, "run every workload a second time and report reuse markers")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-request timeout")
	flag.Parse()

	client := &http.Client{Timeout: *timeout}
	failures := 0
	for _, u := range workloads.Units() {
		req := api.RunRequest{
			SchemaVersion: api.Version,
			Source:        u.Source,
			Defines:       u.Defines,
			Ints:          u.Params,
			Wait:          true,
		}
		if u.Name == "pi" {
			req.Floats = map[string]float64{
				"step":      1.0 / float64(u.Params["steps"]),
				"final_sum": 0,
			}
		}
		want, err := referencePRV(req)
		if err != nil {
			fatal(fmt.Errorf("%s: reference: %w", u.Name, err))
		}
		passes := 1
		if *repeat {
			passes = 2
		}
		for pass := 1; pass <= passes; pass++ {
			mark, got, err := runWithRetry(client, *dispatcher, req)
			if err != nil {
				fmt.Fprintf(os.Stderr, "FAIL %-28s pass %d: %v\n", u.Name, pass, err)
				failures++
				continue
			}
			status := "ok"
			if !bytes.Equal(got, want) {
				status = fmt.Sprintf("TRACE DIFFERS (%d vs %d bytes)", len(got), len(want))
				failures++
			}
			fmt.Printf("%-28s pass %d  %-9s  %s\n", u.Name, pass, markOr(mark, "direct"), status)
		}
	}
	if failures > 0 {
		fatal(fmt.Errorf("%d sweep failures", failures))
	}
	fmt.Println("sweep: all workloads byte-identical through the fleet")
}

func markOr(mark, fallback string) string {
	if mark == "" {
		return fallback
	}
	return mark
}

// runWithRetry resubmits a run whose node died between serving the job
// document and the trace download. Runs are content-addressed, so the
// resubmit is the fleet's recovery idiom: it lands on a healthy node
// (usually as a store hit) and serves the identical bytes.
func runWithRetry(client *http.Client, base string, req api.RunRequest) (string, []byte, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 500 * time.Millisecond)
		}
		mark, prv, err := runOnce(client, base, req)
		if err == nil {
			return mark, prv, nil
		}
		lastErr = err
	}
	return "", nil, lastErr
}

// runOnce posts one synchronous run and downloads its trace.prv.
func runOnce(client *http.Client, base string, req api.RunRequest) (mark string, prv []byte, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", nil, err
	}
	resp, err := client.Post(base+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", nil, err
	}
	defer resp.Body.Close()
	mark = resp.Header.Get("X-Nymbled-Store")
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return mark, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return mark, nil, fmt.Errorf("run: status %d: %s", resp.StatusCode, data)
	}
	var doc api.Job
	if err := json.Unmarshal(data, &doc); err != nil {
		return mark, nil, err
	}
	if doc.State != api.JobDone {
		return mark, nil, fmt.Errorf("run: state %s (%s)", doc.State, doc.Error)
	}
	tr, err := client.Get(base + "/v1/jobs/" + doc.ID + "/trace/trace.prv")
	if err != nil {
		return mark, nil, err
	}
	defer tr.Body.Close()
	prv, err = io.ReadAll(tr.Body)
	if err != nil {
		return mark, nil, err
	}
	if tr.StatusCode != http.StatusOK {
		return mark, nil, fmt.Errorf("trace: status %d: %s", tr.StatusCode, prv)
	}
	return mark, prv, nil
}

// referencePRV renders the workload's .prv with the library write path,
// exactly as nymblesim would put it on disk.
func referencePRV(req api.RunRequest) ([]byte, error) {
	p, err := core.Build(context.Background(), req.Source, core.BuildOptions{Defines: req.Defines})
	if err != nil {
		return nil, err
	}
	args, err := p.SizedArgs(req.Ints, req.Floats)
	if err != nil {
		return nil, err
	}
	out, err := p.Run(context.Background(), args, sim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := out.Streams.WritePRV(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleetsweep:", err)
	os.Exit(1)
}
