// Command nymbleperf runs the static performance-bound analyzer over
// MiniC sources: per-loop initiation intervals, total-cycle lower/upper
// bounds from constant-folded trip counts, a roofline memory-boundedness
// verdict against the DRAM model, a static profile-buffer overflow
// check, and wall-time bounds at the estimated Fmax. Nothing is
// simulated — every number is derived from the schedule before synthesis.
//
// Usage:
//
//	nymbleperf [-D NAME=VALUE]... [-param NAME=VALUE]... [-json] file.mc...
//	nymbleperf -workloads [-json]
//
// -param supplies integer launch arguments (e.g. -param DIM=64) so
// data-dependent trip counts fold to constants. -workloads analyzes the
// built-in seed kernels (GEMM versions 1-5 and pi) with their canonical
// defines and parameters. The JSON report carries a schema "version"
// field and is byte-stable across runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"paravis/internal/core"
	"paravis/internal/perfbound"
	"paravis/internal/staticcheck"
	"paravis/internal/workloads"
)

type defineFlags map[string]string

func (d defineFlags) String() string { return "" }
func (d defineFlags) Set(v string) error {
	name, val, found := strings.Cut(v, "=")
	if !found {
		val = "1"
	}
	if name == "" {
		return fmt.Errorf("empty define name")
	}
	d[name] = val
	return nil
}

type paramFlags map[string]int64

func (p paramFlags) String() string { return "" }
func (p paramFlags) Set(v string) error {
	name, val, found := strings.Cut(v, "=")
	if !found || name == "" {
		return fmt.Errorf("expected NAME=VALUE, got %q", v)
	}
	n, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return fmt.Errorf("param %s: %v", name, err)
	}
	p[name] = n
	return nil
}

// unit is one analyzed compilation unit in the report.
type unit struct {
	Name        string                   `json:"name"`
	Report      *perfbound.Report        `json:"report,omitempty"`
	Diagnostics []staticcheck.Diagnostic `json:"diagnostics"`
	Error       string                   `json:"error,omitempty"`
}

func main() {
	defines := defineFlags{}
	params := paramFlags{}
	flag.Var(defines, "D", "macro definition NAME=VALUE (repeatable)")
	flag.Var(params, "param", "integer launch parameter NAME=VALUE for trip-count folding (repeatable)")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	wl := flag.Bool("workloads", false, "analyze the built-in seed workloads instead of files")
	flag.Parse()
	if *wl == (flag.NArg() > 0) {
		fmt.Fprintln(os.Stderr, "usage: nymbleperf [-D NAME=VALUE] [-param NAME=VALUE] [-json] file.mc...")
		fmt.Fprintln(os.Stderr, "       nymbleperf -workloads [-json]")
		os.Exit(2)
	}

	var units []unit
	if *wl {
		for _, w := range workloads.Units() {
			units = append(units, analyzeOne(w.Name, w.Source, w.Defines, w.Params))
		}
	} else {
		for _, path := range flag.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "nymbleperf:", err)
				os.Exit(2)
			}
			units = append(units, analyzeOne(path, string(src), defines, params))
		}
	}

	failed := false
	for _, u := range units {
		if u.Error != "" {
			failed = true
		}
	}

	if *asJSON {
		report := struct {
			Version int    `json:"version"`
			Units   []unit `json:"units"`
		}{Version: 1, Units: units}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "nymbleperf:", err)
			os.Exit(2)
		}
	} else {
		for _, u := range units {
			fmt.Printf("== %s ==\n", u.Name)
			if u.Error != "" {
				fmt.Printf("  error: %s\n", u.Error)
				continue
			}
			fmt.Print(u.Report.Format())
			for _, d := range u.Diagnostics {
				fmt.Printf("  %s\n", d)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

func analyzeOne(name, src string, defines map[string]string, params map[string]int64) unit {
	prog, err := core.Build(src, core.BuildOptions{Defines: defines})
	if err != nil {
		return unit{Name: name, Error: err.Error(), Diagnostics: []staticcheck.Diagnostic{}}
	}
	rep := perfbound.Analyze(prog.Kernel, prog.Sched, params, perfbound.DefaultConfig())
	ds := staticcheck.CheckPerf(name, prog.Kernel, prog.Sched, params)
	if ds == nil {
		ds = []staticcheck.Diagnostic{}
	}
	return unit{Name: name, Report: rep, Diagnostics: ds}
}
