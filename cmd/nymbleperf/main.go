// Command nymbleperf runs the static performance-bound analyzer over
// MiniC sources: per-loop initiation intervals, total-cycle lower/upper
// bounds from constant-folded trip counts, a roofline memory-boundedness
// verdict against the DRAM model, a static profile-buffer overflow
// check, and wall-time bounds at the estimated Fmax. Nothing is
// simulated — every number is derived from the schedule before synthesis.
// The -json report shares its versioned schema (internal/api) with the
// nymbled daemon's /v1/perf response, so both emit byte-identical JSON
// for the same input.
//
// Usage:
//
//	nymbleperf [-D NAME=VALUE]... [-param NAME=VALUE]... [-json] file.mc|dir...
//	nymbleperf -workloads [-json]
//
// -param supplies integer launch arguments (e.g. -param DIM=64) so
// data-dependent trip counts fold to constants. A directory argument
// analyzes every *.mc file inside it. -workloads analyzes the
// built-in seed kernels (GEMM versions 1-5 and pi) with their canonical
// defines and parameters.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"paravis/internal/api"
	"paravis/internal/cli"
	"paravis/internal/core"
	"paravis/internal/perfbound"
	"paravis/internal/staticcheck"
	"paravis/internal/workloads"
)

func main() {
	defines := cli.Defines{}
	params := cli.Params{}
	flag.Var(defines, "D", "macro definition NAME=VALUE (repeatable)")
	flag.Var(params, "param", "integer launch parameter NAME=VALUE for trip-count folding (repeatable)")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	wl := flag.Bool("workloads", false, "analyze the built-in seed workloads instead of files")
	flag.Parse()
	if *wl == (flag.NArg() > 0) {
		fmt.Fprintln(os.Stderr, "usage: nymbleperf [-D NAME=VALUE] [-param NAME=VALUE] [-json] file.mc|dir...")
		fmt.Fprintln(os.Stderr, "       nymbleperf -workloads [-json]")
		os.Exit(2)
	}

	var units []api.PerfUnit
	if *wl {
		for _, w := range workloads.Units() {
			units = append(units, analyzeOne(w.Name, w.Source, w.Defines, w.Params))
		}
	} else {
		paths, err := cli.ExpandPaths(flag.Args())
		if err != nil {
			fmt.Fprintln(os.Stderr, "nymbleperf:", err)
			os.Exit(2)
		}
		for _, path := range paths {
			src, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "nymbleperf:", err)
				os.Exit(2)
			}
			units = append(units, analyzeOne(path, string(src), defines, params))
		}
	}

	failed := false
	for _, u := range units {
		if u.Error != "" {
			failed = true
		}
	}

	if *asJSON {
		report := api.PerfReport{SchemaVersion: api.Version, Units: units}
		if err := api.Encode(os.Stdout, report); err != nil {
			fmt.Fprintln(os.Stderr, "nymbleperf:", err)
			os.Exit(2)
		}
	} else {
		for _, u := range units {
			fmt.Printf("== %s ==\n", u.Name)
			if u.Error != "" {
				fmt.Printf("  error: %s\n", u.Error)
				continue
			}
			fmt.Print(u.Report.Format())
			for _, d := range u.Diagnostics {
				fmt.Printf("  %s\n", d)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

func analyzeOne(name, src string, defines map[string]string, params map[string]int64) api.PerfUnit {
	prog, err := core.Build(context.Background(), src, core.BuildOptions{Defines: defines})
	if err != nil {
		return api.NewPerfUnit(name, nil, nil, nil, err)
	}
	cfg := perfbound.DefaultConfig()
	cfg.TripHints = api.AbsintTripHints(prog.Fn, params)
	rep := perfbound.Analyze(prog.Kernel, prog.Sched, params, cfg)
	ds := staticcheck.CheckPerf(name, prog.Kernel, prog.Sched, params)
	return api.NewPerfUnit(name, rep, ds, api.NewDependSummary(prog.Fn, params), nil)
}
