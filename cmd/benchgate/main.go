// Command benchgate compares two paperbench -benchjson reports and fails
// (exit 1) if the current suite regressed more than the tolerance versus
// the committed baseline. CI runs it against the repo's BENCH_6.json so a
// slowdown in the simulator hot path breaks the bench job instead of
// landing silently.
//
// Only records present in both files are compared (by name), so adding or
// removing an experiment does not trip the gate. The check is on the
// summed wall time of the shared records — per-record noise on short
// experiments would make a per-record gate flaky.
//
// Usage:
//
//	benchgate -baseline BENCH_6.json -current new.json [-tol 0.20]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type record struct {
	Name    string `json:"name"`
	NsPerOp int64  `json:"ns_per_op"`
}

type report struct {
	Benchmarks []record `json:"benchmarks"`
}

func load(path string) (map[string]int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]int64, len(r.Benchmarks))
	for _, b := range r.Benchmarks {
		m[b.Name] = b.NsPerOp
	}
	return m, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_6.json", "committed baseline report")
	current := flag.String("current", "", "freshly measured report")
	tol := flag.Float64("tol", 0.20, "allowed fractional regression of total wall time")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fatal(err)
	}
	cur, err := load(*current)
	if err != nil {
		fatal(err)
	}
	var baseTotal, curTotal int64
	shared := 0
	for name, b := range base {
		c, ok := cur[name]
		if !ok {
			continue
		}
		shared++
		baseTotal += b
		curTotal += c
		ratio := float64(c)/float64(b) - 1
		mark := " "
		if ratio > *tol {
			mark = "!"
		}
		fmt.Printf("%s %-18s %10.1fms -> %10.1fms  %+6.1f%%\n",
			mark, name, float64(b)/1e6, float64(c)/1e6, 100*ratio)
	}
	if shared == 0 {
		fatal(fmt.Errorf("no shared benchmark records between %s and %s", *baseline, *current))
	}
	ratio := float64(curTotal)/float64(baseTotal) - 1
	fmt.Printf("total: %.1fms -> %.1fms (%+.1f%%, tolerance %.0f%%)\n",
		float64(baseTotal)/1e6, float64(curTotal)/1e6, 100*ratio, 100**tol)
	if ratio > *tol {
		fatal(fmt.Errorf("suite regressed %.1f%% > %.0f%% tolerance", 100*ratio, 100**tol))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
