// Command benchgate compares two paperbench -benchjson reports and fails
// (exit 1) if the current suite regressed more than the tolerance versus
// the committed baseline. CI runs it against the repo's BENCH_6.json so a
// slowdown in the simulator hot path breaks the bench job instead of
// landing silently.
//
// Only records present in both files are compared (by name), so adding or
// removing an experiment does not trip the gate. The check is on the
// summed wall time of the shared records — per-record noise on short
// experiments would make a per-record gate flaky.
//
// -ratio asserts invariants within the current report alone: each
// "slow:fast:min" clause (comma-separable) requires ns(slow) >=
// min*ns(fast). CI uses it to require the serving path's warm hit to be
// at least 10x faster than its cold miss (serving/cold:serving/warm:10).
// With -baseline "" only the ratio checks run.
//
// Usage:
//
//	benchgate -baseline BENCH_6.json -current new.json [-tol 0.20]
//	          [-ratio slow:fast:min[,slow:fast:min...]]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type record struct {
	Name    string `json:"name"`
	NsPerOp int64  `json:"ns_per_op"`
}

type report struct {
	Benchmarks []record `json:"benchmarks"`
}

func load(path string) (map[string]int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]int64, len(r.Benchmarks))
	for _, b := range r.Benchmarks {
		m[b.Name] = b.NsPerOp
	}
	return m, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_6.json", "committed baseline report (empty: skip the regression compare)")
	current := flag.String("current", "", "freshly measured report")
	tol := flag.Float64("tol", 0.20, "allowed fractional regression of total wall time")
	ratios := flag.String("ratio", "", "comma-separated slow:fast:min clauses asserted on the current report")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fatal(err)
	}
	if *ratios != "" {
		if err := checkRatios(cur, *ratios); err != nil {
			fatal(err)
		}
	}
	if *baseline == "" {
		return
	}
	base, err := load(*baseline)
	if err != nil {
		fatal(err)
	}
	var baseTotal, curTotal int64
	shared := 0
	for name, b := range base {
		c, ok := cur[name]
		if !ok {
			continue
		}
		shared++
		baseTotal += b
		curTotal += c
		ratio := float64(c)/float64(b) - 1
		mark := " "
		if ratio > *tol {
			mark = "!"
		}
		fmt.Printf("%s %-18s %10.1fms -> %10.1fms  %+6.1f%%\n",
			mark, name, float64(b)/1e6, float64(c)/1e6, 100*ratio)
	}
	if shared == 0 {
		fatal(fmt.Errorf("no shared benchmark records between %s and %s", *baseline, *current))
	}
	ratio := float64(curTotal)/float64(baseTotal) - 1
	fmt.Printf("total: %.1fms -> %.1fms (%+.1f%%, tolerance %.0f%%)\n",
		float64(baseTotal)/1e6, float64(curTotal)/1e6, 100*ratio, 100**tol)
	if ratio > *tol {
		fatal(fmt.Errorf("suite regressed %.1f%% > %.0f%% tolerance", 100*ratio, 100**tol))
	}
}

// checkRatios enforces each "slow:fast:min" clause on one report:
// record slow must cost at least min times record fast.
func checkRatios(recs map[string]int64, clauses string) error {
	for _, clause := range strings.Split(clauses, ",") {
		parts := strings.Split(strings.TrimSpace(clause), ":")
		if len(parts) != 3 {
			return fmt.Errorf("bad -ratio clause %q (want slow:fast:min)", clause)
		}
		min, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || min <= 0 {
			return fmt.Errorf("bad -ratio minimum %q", parts[2])
		}
		slow, ok := recs[parts[0]]
		if !ok {
			return fmt.Errorf("-ratio: no record %q in current report", parts[0])
		}
		fast, ok := recs[parts[1]]
		if !ok || fast <= 0 {
			return fmt.Errorf("-ratio: no usable record %q in current report", parts[1])
		}
		got := float64(slow) / float64(fast)
		fmt.Printf("ratio %s/%s: %.1fx (minimum %.1fx)\n", parts[0], parts[1], got, min)
		if got < min {
			return fmt.Errorf("ratio %s/%s is %.1fx, below the %.1fx minimum", parts[0], parts[1], got, min)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
