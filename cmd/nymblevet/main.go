// Command nymblevet runs the compile-time diagnostics engine over MiniC
// sources: the OpenMP race and map-clause checkers, the def-use dataflow
// lints (use-before-init, dead-store, unused-var), stall-lint and the
// hardened IR/schedule verifiers. It never simulates anything — every
// finding is produced before synthesis.
//
// Usage:
//
//	nymblevet [-D NAME=VALUE]... [-json] file.mc...
//	nymblevet -workloads [-json]
//
// -workloads vets the built-in seed kernels (GEMM versions 1-5 and pi)
// with their canonical defines. The exit status is 1 if any unit reports
// an error-severity diagnostic, 0 otherwise (warnings and infos do not
// fail the run).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"paravis/internal/core"
	"paravis/internal/staticcheck"
	"paravis/internal/workloads"
)

type defineFlags map[string]string

func (d defineFlags) String() string { return "" }
func (d defineFlags) Set(v string) error {
	name, val, found := strings.Cut(v, "=")
	if !found {
		val = "1"
	}
	if name == "" {
		return fmt.Errorf("empty define name")
	}
	d[name] = val
	return nil
}

// unit is one vetted compilation unit in the report.
type unit struct {
	Name        string                   `json:"name"`
	Clean       bool                     `json:"clean"`
	Diagnostics []staticcheck.Diagnostic `json:"diagnostics"`
}

func main() {
	defines := defineFlags{}
	flag.Var(defines, "D", "macro definition NAME=VALUE (repeatable)")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	wl := flag.Bool("workloads", false, "vet the built-in seed workloads instead of files")
	flag.Parse()
	if *wl == (flag.NArg() > 0) {
		fmt.Fprintln(os.Stderr, "usage: nymblevet [-D NAME=VALUE] [-json] file.mc...")
		fmt.Fprintln(os.Stderr, "       nymblevet -workloads [-json]")
		os.Exit(2)
	}

	var units []unit
	if *wl {
		for _, w := range workloads.Units() {
			units = append(units, vetOne(w.Name, w.Source, w.Defines))
		}
	} else {
		for _, path := range flag.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "nymblevet:", err)
				os.Exit(2)
			}
			units = append(units, vetOne(path, string(src), defines))
		}
	}

	failed := false
	for _, u := range units {
		for _, d := range u.Diagnostics {
			if d.Severity == staticcheck.SevError {
				failed = true
			}
		}
	}

	if *asJSON {
		report := struct {
			Version int    `json:"version"`
			Units   []unit `json:"units"`
		}{Version: 1, Units: units}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "nymblevet:", err)
			os.Exit(2)
		}
	} else {
		for _, u := range units {
			status := "clean"
			if !u.Clean {
				status = "findings"
			}
			fmt.Printf("%s: %s (%d diagnostics)\n", u.Name, status, len(u.Diagnostics))
			for _, d := range u.Diagnostics {
				fmt.Printf("  %s\n", d)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

func vetOne(name, src string, defines map[string]string) unit {
	ds := core.Vet(name, src, core.BuildOptions{Defines: defines})
	if ds == nil {
		ds = []staticcheck.Diagnostic{}
	}
	return unit{Name: name, Clean: staticcheck.Clean(ds), Diagnostics: ds}
}
