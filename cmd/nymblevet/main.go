// Command nymblevet runs the compile-time diagnostics engine over MiniC
// sources: the OpenMP race and map-clause checkers, the def-use dataflow
// lints (use-before-init, dead-store, unused-var), stall-lint and the
// hardened IR/schedule verifiers. It never simulates anything — every
// finding is produced before synthesis. The -json report shares its
// versioned schema (internal/api) with the nymbled daemon's /v1/vet
// response, so both emit byte-identical JSON for the same input.
//
// Usage:
//
//	nymblevet [-D NAME=VALUE]... [-rule ID] [-json|-sarif] file.mc|dir...
//	nymblevet -workloads [-rule ID] [-json|-sarif]
//
// A directory argument vets every *.mc file inside it. -workloads vets
// the built-in seed kernels (GEMM versions 1-5 and pi)
// with their canonical defines. -rule restricts the report to one rule
// id (e.g. loop-carried-dep); clean/exit status then reflect only that
// rule. The exit status is 1 if any unit reports an error-severity
// diagnostic, 0 otherwise (warnings and infos do not fail the run).
// The -json report carries a "depend" section per unit (loop-by-loop
// dependence summary and transformation-legality verdicts) and an
// "absint" section (the abstract interpreter's reachability, trip and
// bounds verdicts). -sarif emits the same findings as a SARIF 2.1.0 log
// for code-scanning upload.
package main

import (
	"flag"
	"fmt"
	"os"

	"paravis/internal/api"
	"paravis/internal/cli"
	"paravis/internal/core"
	"paravis/internal/minic"
	"paravis/internal/staticcheck"
	"paravis/internal/workloads"
)

func main() {
	defines := cli.Defines{}
	flag.Var(defines, "D", "macro definition NAME=VALUE (repeatable)")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	asSarif := flag.Bool("sarif", false, "emit the report as a SARIF 2.1.0 log")
	wl := flag.Bool("workloads", false, "vet the built-in seed workloads instead of files")
	rule := flag.String("rule", "", "only report diagnostics of this rule id (e.g. loop-carried-dep)")
	flag.Parse()
	if *wl == (flag.NArg() > 0) || (*asJSON && *asSarif) {
		fmt.Fprintln(os.Stderr, "usage: nymblevet [-D NAME=VALUE] [-rule ID] [-json|-sarif] file.mc|dir...")
		fmt.Fprintln(os.Stderr, "       nymblevet -workloads [-rule ID] [-json|-sarif]")
		os.Exit(2)
	}

	var units []api.VetUnit
	if *wl {
		for _, w := range workloads.Units() {
			units = append(units, vetOne(w.Name, w.Source, w.Defines, *rule))
		}
	} else {
		paths, err := cli.ExpandPaths(flag.Args())
		if err != nil {
			fmt.Fprintln(os.Stderr, "nymblevet:", err)
			os.Exit(2)
		}
		for _, path := range paths {
			src, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "nymblevet:", err)
				os.Exit(2)
			}
			units = append(units, vetOne(path, string(src), defines, *rule))
		}
	}

	failed := false
	for _, u := range units {
		for _, d := range u.Diagnostics {
			if d.Severity == staticcheck.SevError {
				failed = true
			}
		}
	}

	switch {
	case *asJSON:
		report := api.VetReport{SchemaVersion: api.Version, Units: units}
		if err := api.Encode(os.Stdout, report); err != nil {
			fmt.Fprintln(os.Stderr, "nymblevet:", err)
			os.Exit(2)
		}
	case *asSarif:
		if err := api.Encode(os.Stdout, api.NewSarif(units)); err != nil {
			fmt.Fprintln(os.Stderr, "nymblevet:", err)
			os.Exit(2)
		}
	default:
		for _, u := range units {
			status := "clean"
			if !u.Clean {
				status = "findings"
			}
			fmt.Printf("%s: %s (%d diagnostics)\n", u.Name, status, len(u.Diagnostics))
			for _, d := range u.Diagnostics {
				fmt.Printf("  %s\n", d)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

func vetOne(name, src string, defines map[string]string, rule string) api.VetUnit {
	ds := core.Vet(name, src, core.BuildOptions{Defines: defines})
	if rule != "" {
		kept := []staticcheck.Diagnostic{}
		for _, d := range ds {
			if d.Rule == rule {
				kept = append(kept, d)
			}
		}
		ds = kept
	}
	dep := api.ParseDependSummary(src, minic.Options{Defines: defines})
	abs := api.ParseAbsintSummary(src, minic.Options{Defines: defines})
	return api.NewVetUnit(name, ds, dep, abs)
}
