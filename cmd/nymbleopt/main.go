// Command nymbleopt searches the transformation space of MiniC kernels:
// legality-gated source-to-source passes (work redistribution,
// vectorization, loop tiling, BRAM blocking, double buffering) crossed
// with their parameter grids, ranked by perfbound's static cycle
// brackets and confirmed by short simulator runs. The output is the
// winning transformation sequence, its measured cycles against the
// baseline, and the full candidate-by-candidate exploration report.
// The -json report shares its versioned schema (internal/api) with the
// nymbled daemon's /v1/optimize response, so both emit byte-identical
// JSON for the same input.
//
// Usage:
//
//	nymbleopt [-D NAME=VALUE]... [-param NAME=VALUE]... [-json]
//	          [-budget N] [-rounds N] [-o dir] file.mc|dir...
//	nymbleopt -workloads [-json] [-budget N]
//
// -param supplies integer launch arguments (e.g. -param DIM=64); the
// passes fold divisibility proofs against them and the simulator
// receives them as scalar arguments. A directory argument optimizes
// every *.mc file inside it. -workloads searches the built-in seed
// kernels with their canonical defines and parameters. -o writes each
// winning kernel to dir/<name>.opt.mc.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"

	"paravis/internal/api"
	"paravis/internal/autotune"
	"paravis/internal/cli"
	"paravis/internal/core"
	"paravis/internal/workloads"
)

func main() {
	defines := cli.Defines{}
	params := cli.Params{}
	flag.Var(defines, "D", "macro definition NAME=VALUE (repeatable)")
	flag.Var(params, "param", "integer launch parameter NAME=VALUE (repeatable)")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	wl := flag.Bool("workloads", false, "search the built-in seed workloads instead of files")
	budget := flag.Int("budget", 0, "max simulator confirmations across the search (0 = 32)")
	rounds := flag.Int("rounds", 0, "max greedy rounds (0 = 8)")
	outDir := flag.String("o", "", "write each winning kernel to dir/<name>.opt.mc")
	flag.Parse()
	if *wl == (flag.NArg() > 0) {
		fmt.Fprintln(os.Stderr, "usage: nymbleopt [-D NAME=VALUE] [-param NAME=VALUE] [-json] [-budget N] [-rounds N] [-o dir] file.mc|dir...")
		fmt.Fprintln(os.Stderr, "       nymbleopt -workloads [-json] [-budget N]")
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cache := core.NewCache()
	var units []api.OptimizeUnit
	if *wl {
		for _, w := range workloads.Units() {
			units = append(units, searchOne(ctx, cache, w.Name, w.Source, autotune.Options{
				Defines: w.Defines,
				Params:  w.Params,
				Floats:  w.Floats,
				Budget:  autotune.Budget{Candidates: *budget},
			}))
		}
	} else {
		paths, err := cli.ExpandPaths(flag.Args())
		if err != nil {
			fmt.Fprintln(os.Stderr, "nymbleopt:", err)
			os.Exit(2)
		}
		for _, path := range paths {
			src, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "nymbleopt:", err)
				os.Exit(2)
			}
			units = append(units, searchOne(ctx, cache, path, string(src), autotune.Options{
				Defines:   defines,
				Params:    params,
				Budget:    autotune.Budget{Candidates: *budget},
				MaxRounds: *rounds,
			}))
		}
	}

	failed := false
	for _, u := range units {
		if u.Error != "" {
			failed = true
		}
	}

	if *outDir != "" {
		if err := writeWinners(*outDir, units); err != nil {
			fmt.Fprintln(os.Stderr, "nymbleopt:", err)
			os.Exit(2)
		}
	}

	if *asJSON {
		report := api.OptimizeReport{SchemaVersion: api.Version, Units: units}
		if err := api.Encode(os.Stdout, report); err != nil {
			fmt.Fprintln(os.Stderr, "nymbleopt:", err)
			os.Exit(2)
		}
	} else {
		for _, u := range units {
			printUnit(u)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// searchOne runs one search; errors become the unit's Error field so a
// bad file does not abort a multi-file report.
func searchOne(ctx context.Context, cache *core.Cache, name, src string, opts autotune.Options) api.OptimizeUnit {
	opts.Cache = cache
	res, err := autotune.Optimize(ctx, name, src, opts)
	return api.NewOptimizeUnit(name, res, err)
}

// writeWinners stores each unit's winning kernel as dir/<name>.opt.mc.
func writeWinners(dir string, units []api.OptimizeUnit) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, u := range units {
		if u.Source == "" {
			continue
		}
		base := strings.TrimSuffix(filepath.Base(u.Name), ".mc")
		if err := os.WriteFile(filepath.Join(dir, base+".opt.mc"), []byte(u.Source), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func printUnit(u api.OptimizeUnit) {
	fmt.Printf("== %s ==\n", u.Name)
	if u.Error != "" {
		fmt.Printf("  error: %s\n", u.Error)
		return
	}
	fmt.Printf("  baseline: %d cycles\n", u.BaselineCycles)
	if u.Winner == "" {
		fmt.Printf("  no transformation beat the baseline (%d candidates, %d simulated, %d rounds)\n",
			len(u.Candidates), u.SimsRun, u.Rounds)
		return
	}
	fmt.Printf("  winner:   %d cycles (%.2fx) in bracket [%d, %s]\n",
		u.WinnerCycles, float64(u.BaselineCycles)/float64(u.WinnerCycles),
		u.WinnerLower, upperString(u.WinnerUpper, u.UpperKnown))
	for i, s := range u.WinnerSteps {
		fmt.Printf("  step %d:   %s on %s%s\n", i+1, s.Pass, s.Loop, paramString(s.Params))
	}
	fmt.Printf("  explored %d candidates, %d simulated, %d rounds\n",
		len(u.Candidates), u.SimsRun, u.Rounds)
}

func upperString(upper int64, known bool) string {
	if !known {
		return "?"
	}
	return fmt.Sprintf("%d", upper)
}

func paramString(ps map[string]int64) string {
	if len(ps) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ps))
	for k := range ps {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, ps[k]))
	}
	return " {" + strings.Join(parts, ", ") + "}"
}
