// Command nymblesim compiles a MiniC+OpenMP kernel, simulates it on the
// cycle-level Nymble-MT accelerator model with the profiling unit attached,
// writes the Paraver trace bundle (.prv/.pcf/.row) and prints a run
// summary.
//
// Arguments are passed as name=value pairs; pointer parameters get
// zero-filled buffers whose sizes come from the map clauses (use
// name=@file.f32 to load raw little-endian float32 data).
//
// With -sweep NAME=v1,v2,... the kernel is compiled and simulated once per
// value of the macro NAME (design points run concurrently, bounded by -j)
// and a comparison table is printed instead of the single-run summary.
//
// Usage:
//
//	nymblesim [-D NAME=VALUE]... [-o dir] [-name base] [-noprofile] [-gzip]
//	          [-j N] [-sweep NAME=v1,v2,...] file.mc arg=value...
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"paravis/internal/advisor"
	"paravis/internal/core"
	"paravis/internal/parallel"
	"paravis/internal/paraver/analysis"
	"paravis/internal/sim"
)

type defineFlags map[string]string

func (d defineFlags) String() string { return "" }
func (d defineFlags) Set(v string) error {
	name, val, found := strings.Cut(v, "=")
	if !found {
		val = "1"
	}
	d[name] = val
	return nil
}

func main() {
	defines := defineFlags{}
	flag.Var(defines, "D", "macro definition NAME=VALUE (repeatable)")
	outDir := flag.String("o", "traces", "output directory for the Paraver bundle")
	base := flag.String("name", "", "trace base name (default: kernel name)")
	noProfile := flag.Bool("noprofile", false, "disable the profiling unit")
	gz := flag.Bool("gzip", false, "gzip-compress the trace body (trace.prv.gz)")
	sweep := flag.String("sweep", "", "sweep a macro: NAME=v1,v2,... (one design point per value)")
	workers := flag.Int("j", 0, "max design points simulated concurrently (0 = GOMAXPROCS)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: nymblesim [-D N=V] [-o dir] [-name base] [-noprofile] [-gzip] [-j N] [-sweep NAME=v1,v2,...] file.mc arg=value...")
		os.Exit(2)
	}
	if *workers > 0 {
		parallel.SetDefaultWorkers(*workers)
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	src := string(srcBytes)

	ints := map[string]int64{}
	floats := map[string]float64{}
	bufFiles := map[string]string{}
	for _, a := range flag.Args()[1:] {
		name, val, found := strings.Cut(a, "=")
		if !found {
			fatal(fmt.Errorf("argument %q is not name=value", a))
		}
		if strings.HasPrefix(val, "@") {
			bufFiles[name] = val[1:]
			continue
		}
		if iv, err := strconv.ParseInt(val, 10, 64); err == nil {
			ints[name] = iv
			continue
		}
		fv, err := strconv.ParseFloat(val, 64)
		if err != nil {
			fatal(fmt.Errorf("argument %q: %v", a, err))
		}
		floats[name] = fv
	}

	if *sweep != "" {
		if err := runSweep(src, defines, *sweep, *workers, ints, floats, bufFiles, *noProfile); err != nil {
			fatal(err)
		}
		return
	}

	p, err := core.Build(src, core.BuildOptions{Defines: defines})
	if err != nil {
		fatal(err)
	}
	args, err := makeArgs(p, ints, floats, bufFiles)
	if err != nil {
		fatal(err)
	}

	cfg := sim.DefaultConfig()
	cfg.Profile.Enabled = !*noProfile
	out, err := p.Run(args, cfg)
	if err != nil {
		fatal(err)
	}

	r := out.Result
	fmt.Printf("kernel %s: %d cycles (%.3f ms at %.0f MHz), %d threads\n",
		p.Kernel.Name, r.Cycles, 1e3*out.Seconds(r.Cycles), out.FmaxMHz, p.Kernel.NumThreads)
	fmt.Printf("stalls: %d, FLOPs: %d, lock acquisitions: %d (contended %d)\n",
		r.TotalStalls(), r.TotalFpOps(), r.LockAcquisitions, r.LockContended)
	if len(r.StallsByLoop) > 0 {
		fmt.Println("stall hotspots by source loop:")
		type row struct {
			name string
			n    int64
		}
		var rows []row
		for name, n := range r.StallsByLoop {
			rows = append(rows, row{name, n})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
		for _, rw := range rows {
			fmt.Printf("  %-20s %12d stall cycles (%.1f%%)\n",
				rw.name, rw.n, 100*float64(rw.n)/float64(r.TotalStalls()))
		}
	}
	fmt.Printf("DRAM: %d transactions, %d B read, %d B written\n",
		r.DRAM.Transactions, r.DRAM.ReadWordsMoved*4, r.DRAM.WriteWordsMoved*4)
	for name, v := range r.ScalarsOut {
		fmt.Printf("result %s = %g\n", name, v)
	}
	for name, v := range r.ScalarsOutInt {
		fmt.Printf("result %s = %d\n", name, v)
	}
	if out.Trace != nil {
		bw := analysis.AvgBandwidthBytesPerCycle(out.Trace)
		fmt.Printf("avg external bandwidth: %.3f B/cycle (%.2f GB/s)\n",
			bw, analysis.BandwidthGBs(bw, out.FmaxMHz))
		fmt.Printf("sustained compute: %.3f GFLOP/s\n", analysis.GFlops(out.Trace, out.FmaxMHz))
		name := *base
		if name == "" {
			name = p.Kernel.Name
		}
		write := out.WriteTrace
		if *gz {
			write = out.WriteTraceGz
		}
		prv, err := write(*outDir, name)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (+ .pcf/.row)\n", prv)
		fmt.Println("\nadvisor findings:")
		fmt.Print(advisor.Format(advisor.Advise(out, advisor.Thresholds{})))
	}
}

// makeArgs sizes zero-filled buffers from the program's map clauses and
// fills them from @file arguments. Scalar maps are copied so concurrent
// sweep runs never share argument state.
func makeArgs(p *core.Program, ints map[string]int64, floats map[string]float64, bufFiles map[string]string) (sim.Args, error) {
	args := sim.Args{
		Ints:    map[string]int64{},
		Floats:  map[string]float64{},
		Buffers: map[string]*sim.Buffer{},
	}
	env := map[string]int64{}
	for k, v := range ints {
		args.Ints[k] = v
		env[k] = v
	}
	for k, v := range floats {
		args.Floats[k] = v
	}
	for _, m := range p.Kernel.Maps {
		if m.Scalar {
			continue
		}
		length, err := m.Len.Eval(env)
		if err != nil {
			return sim.Args{}, fmt.Errorf("map %s: %v", m.Name, err)
		}
		low := int64(0)
		if m.Low != nil {
			low, _ = m.Low.Eval(env)
		}
		buf := sim.NewZeroBuffer(int(low + length))
		if path, ok := bufFiles[m.Name]; ok {
			data, err := loadF32(path)
			if err != nil {
				return sim.Args{}, err
			}
			copy(buf.Words, sim.NewFloatBuffer(data).Words)
		}
		args.Buffers[m.Name] = buf
	}
	return args, nil
}

// runSweep compiles and simulates the kernel once per value of the swept
// macro. Design points are independent, so they run concurrently; the table
// is printed in the order the values were given.
func runSweep(src string, defines defineFlags, spec string, workers int,
	ints map[string]int64, floats map[string]float64, bufFiles map[string]string, noProfile bool) error {
	name, list, found := strings.Cut(spec, "=")
	if !found || list == "" {
		return fmt.Errorf("-sweep wants NAME=v1,v2,..., got %q", spec)
	}
	vals := strings.Split(list, ",")

	type point struct {
		cycles  int64
		stalls  int64
		threads int
		bw      float64
		gflops  float64
		fmax    float64
	}
	pts := make([]point, len(vals))
	err := parallel.ForEach(workers, len(vals), func(i int) error {
		defs := defineFlags{}
		for k, v := range defines {
			defs[k] = v
		}
		defs[name] = vals[i]
		p, err := core.Build(src, core.BuildOptions{Defines: defs})
		if err != nil {
			return fmt.Errorf("%s=%s: %w", name, vals[i], err)
		}
		args, err := makeArgs(p, ints, floats, bufFiles)
		if err != nil {
			return fmt.Errorf("%s=%s: %w", name, vals[i], err)
		}
		cfg := sim.DefaultConfig()
		cfg.Profile.Enabled = !noProfile
		out, err := p.Run(args, cfg)
		if err != nil {
			return fmt.Errorf("%s=%s: %w", name, vals[i], err)
		}
		pt := point{
			cycles:  out.Result.Cycles,
			stalls:  out.Result.TotalStalls(),
			threads: p.Kernel.NumThreads,
			fmax:    out.FmaxMHz,
		}
		if out.Trace != nil {
			pt.bw = analysis.AvgBandwidthBytesPerCycle(out.Trace)
			pt.gflops = analysis.GFlops(out.Trace, out.FmaxMHz)
		}
		pts[i] = pt
		return nil
	})
	if err != nil {
		return err
	}

	fmt.Printf("sweep %s over %d values (%d workers)\n",
		name, len(vals), parallel.Resolve(workers))
	fmt.Printf("%-12s %10s %12s %12s %8s %10s %9s\n",
		name, "threads", "cycles", "stalls", "speedup", "BW B/cyc", "GFLOP/s")
	base := pts[0].cycles
	for i, v := range vals {
		sp := float64(base) / float64(pts[i].cycles)
		fmt.Printf("%-12s %10d %12d %12d %7.2fx %10.3f %9.3f\n",
			v, pts[i].threads, pts[i].cycles, pts[i].stalls, sp, pts[i].bw, pts[i].gflops)
	}
	return nil
}

func loadF32(path string) ([]float32, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw)%4 != 0 {
		return nil, fmt.Errorf("%s: size %d is not a multiple of 4", path, len(raw))
	}
	out := make([]float32, len(raw)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nymblesim:", err)
	os.Exit(1)
}
