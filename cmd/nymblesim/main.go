// Command nymblesim compiles a MiniC+OpenMP kernel, simulates it on the
// cycle-level Nymble-MT accelerator model with the profiling unit attached,
// writes the Paraver trace bundle (.prv/.pcf/.row) and prints a run
// summary. Ctrl-C cancels the simulation cleanly through the engine's
// context support.
//
// Arguments are passed as name=value pairs; pointer parameters get
// zero-filled buffers whose sizes come from the map clauses (use
// name=@file.f32 to load raw little-endian float32 data).
//
// With -sweep NAME=v1,v2,... the kernel is compiled and simulated once per
// value of the macro NAME (design points run concurrently, bounded by -j)
// and a comparison table is printed instead of the single-run summary.
//
// Usage:
//
//	nymblesim [-D NAME=VALUE]... [-json] [-o dir] [-name base] [-noprofile] [-interp]
//	          [-gzip] [-j N] [-sweep NAME=v1,v2,...] file.mc arg=value...
//
// -json replaces the text summary with the versioned run-summary
// document (internal/api.StoredRun) — the same bytes nymbled persists
// as a run job's summary.json — while still writing the trace bundle.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"paravis/internal/advisor"
	"paravis/internal/api"
	"paravis/internal/cli"
	"paravis/internal/core"
	"paravis/internal/parallel"
	"paravis/internal/paraver/analysis"
	"paravis/internal/sim"
)

func main() {
	defines := cli.Defines{}
	flag.Var(defines, "D", "macro definition NAME=VALUE (repeatable)")
	outDir := flag.String("o", "traces", "output directory for the Paraver bundle")
	base := flag.String("name", "", "trace base name (default: kernel name)")
	asJSON := flag.Bool("json", false, "emit the run summary as JSON")
	noProfile := flag.Bool("noprofile", false, "disable the profiling unit")
	interp := flag.Bool("interp", false, "force the interpreted engine (per-op dispatch) instead of specialized stage closures")
	gz := flag.Bool("gzip", false, "gzip-compress the trace body (trace.prv.gz)")
	sweep := flag.String("sweep", "", "sweep a macro: NAME=v1,v2,... (one design point per value)")
	workers := flag.Int("j", 0, "max design points simulated concurrently (0 = GOMAXPROCS)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: nymblesim [-D N=V] [-json] [-o dir] [-name base] [-noprofile] [-interp] [-gzip] [-j N] [-sweep NAME=v1,v2,...] file.mc arg=value...")
		os.Exit(2)
	}
	if *workers > 0 {
		parallel.SetDefaultWorkers(*workers)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	src := string(srcBytes)

	ints, floats, bufFiles, err := cli.ParseArgs(flag.Args()[1:])
	if err != nil {
		fatal(err)
	}

	if *sweep != "" {
		if err := runSweep(ctx, src, defines, *sweep, *workers, ints, floats, bufFiles, *noProfile, *interp); err != nil {
			fatal(err)
		}
		return
	}

	p, err := core.Build(ctx, src, core.BuildOptions{Defines: defines})
	if err != nil {
		fatal(err)
	}
	args, err := cli.MakeArgs(p, ints, floats, bufFiles)
	if err != nil {
		fatal(err)
	}

	cfg := sim.DefaultConfig()
	cfg.Profile.Enabled = !*noProfile
	cfg.Interp = *interp
	out, err := p.Run(ctx, args, cfg)
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		// The same versioned document nymbled persists as summary.json
		// (and serves inside the job body), byte for byte; the trace list
		// names the daemon's downloadable bundle files.
		doc := api.StoredRun{
			SchemaVersion: api.Version,
			Kernel:        p.Kernel.Name,
			Summary:       api.NewRunSummary(p, out),
		}
		if out.Streams != nil {
			doc.Trace = []string{"trace.prv", "trace.prv.gz", "trace.pcf", "trace.row"}
		}
		if err := api.Encode(os.Stdout, doc); err != nil {
			fatal(err)
		}
		if out.Trace != nil {
			name := *base
			if name == "" {
				name = p.Kernel.Name
			}
			write := out.WriteTrace
			if *gz {
				write = out.WriteTraceGz
			}
			if _, err := write(*outDir, name); err != nil {
				fatal(err)
			}
		}
		return
	}

	r := out.Result
	fmt.Printf("kernel %s: %d cycles (%.3f ms at %.0f MHz), %d threads\n",
		p.Kernel.Name, r.Cycles, 1e3*out.Seconds(r.Cycles), out.FmaxMHz, p.Kernel.NumThreads)
	fmt.Printf("stalls: %d, FLOPs: %d, lock acquisitions: %d (contended %d)\n",
		r.TotalStalls(), r.TotalFpOps(), r.LockAcquisitions, r.LockContended)
	if len(r.StallsByLoop) > 0 {
		fmt.Println("stall hotspots by source loop:")
		type row struct {
			name string
			n    int64
		}
		var rows []row
		for name, n := range r.StallsByLoop {
			rows = append(rows, row{name, n})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
		for _, rw := range rows {
			fmt.Printf("  %-20s %12d stall cycles (%.1f%%)\n",
				rw.name, rw.n, 100*float64(rw.n)/float64(r.TotalStalls()))
		}
	}
	fmt.Printf("DRAM: %d transactions, %d B read, %d B written\n",
		r.DRAM.Transactions, r.DRAM.ReadWordsMoved*4, r.DRAM.WriteWordsMoved*4)
	for name, v := range r.ScalarsOut {
		fmt.Printf("result %s = %g\n", name, v)
	}
	for name, v := range r.ScalarsOutInt {
		fmt.Printf("result %s = %d\n", name, v)
	}
	if out.Trace != nil {
		bw := analysis.AvgBandwidthBytesPerCycle(out.Trace)
		fmt.Printf("avg external bandwidth: %.3f B/cycle (%.2f GB/s)\n",
			bw, analysis.BandwidthGBs(bw, out.FmaxMHz))
		fmt.Printf("sustained compute: %.3f GFLOP/s\n", analysis.GFlops(out.Trace, out.FmaxMHz))
		name := *base
		if name == "" {
			name = p.Kernel.Name
		}
		write := out.WriteTrace
		if *gz {
			write = out.WriteTraceGz
		}
		prv, err := write(*outDir, name)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (+ .pcf/.row)\n", prv)
		fmt.Println("\nadvisor findings:")
		fmt.Print(advisor.Format(advisor.AdviseProgram(p, out, advisor.Thresholds{})))
	}
}

// runSweep compiles and simulates the kernel once per value of the swept
// macro. Design points are independent, so they run concurrently; the table
// is printed in the order the values were given.
func runSweep(ctx context.Context, src string, defines cli.Defines, spec string, workers int,
	ints map[string]int64, floats map[string]float64, bufFiles map[string]string, noProfile, interp bool) error {
	name, list, found := strings.Cut(spec, "=")
	if !found || list == "" {
		return fmt.Errorf("-sweep wants NAME=v1,v2,..., got %q", spec)
	}
	vals := strings.Split(list, ",")

	type point struct {
		cycles  int64
		stalls  int64
		threads int
		bw      float64
		gflops  float64
		fmax    float64
	}
	pts := make([]point, len(vals))
	err := parallel.ForEach(workers, len(vals), func(i int) error {
		defs := cli.Defines{}
		for k, v := range defines {
			defs[k] = v
		}
		defs[name] = vals[i]
		p, err := core.Build(ctx, src, core.BuildOptions{Defines: defs})
		if err != nil {
			return fmt.Errorf("%s=%s: %w", name, vals[i], err)
		}
		args, err := cli.MakeArgs(p, ints, floats, bufFiles)
		if err != nil {
			return fmt.Errorf("%s=%s: %w", name, vals[i], err)
		}
		cfg := sim.DefaultConfig()
		cfg.Profile.Enabled = !noProfile
		cfg.Interp = interp
		out, err := p.Run(ctx, args, cfg)
		if err != nil {
			return fmt.Errorf("%s=%s: %w", name, vals[i], err)
		}
		pt := point{
			cycles:  out.Result.Cycles,
			stalls:  out.Result.TotalStalls(),
			threads: p.Kernel.NumThreads,
			fmax:    out.FmaxMHz,
		}
		if out.Trace != nil {
			pt.bw = analysis.AvgBandwidthBytesPerCycle(out.Trace)
			pt.gflops = analysis.GFlops(out.Trace, out.FmaxMHz)
		}
		pts[i] = pt
		return nil
	})
	if err != nil {
		return err
	}

	fmt.Printf("sweep %s over %d values (%d workers)\n",
		name, len(vals), parallel.Resolve(workers))
	fmt.Printf("%-12s %10s %12s %12s %8s %10s %9s\n",
		name, "threads", "cycles", "stalls", "speedup", "BW B/cyc", "GFLOP/s")
	base := pts[0].cycles
	for i, v := range vals {
		sp := float64(base) / float64(pts[i].cycles)
		fmt.Printf("%-12s %10d %12d %12d %7.2fx %10.3f %9.3f\n",
			v, pts[i].threads, pts[i].cycles, pts[i].stalls, sp, pts[i].bw, pts[i].gflops)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nymblesim:", err)
	os.Exit(1)
}
