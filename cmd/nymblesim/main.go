// Command nymblesim compiles a MiniC+OpenMP kernel, simulates it on the
// cycle-level Nymble-MT accelerator model with the profiling unit attached,
// writes the Paraver trace bundle (.prv/.pcf/.row) and prints a run
// summary.
//
// Arguments are passed as name=value pairs; pointer parameters get
// zero-filled buffers whose sizes come from the map clauses (use
// name=@file.f32 to load raw little-endian float32 data).
//
// Usage:
//
//	nymblesim [-D NAME=VALUE]... [-o dir] [-name base] [-noprofile] file.mc arg=value...
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"paravis/internal/advisor"
	"paravis/internal/core"
	"paravis/internal/paraver/analysis"
	"paravis/internal/sim"
)

type defineFlags map[string]string

func (d defineFlags) String() string { return "" }
func (d defineFlags) Set(v string) error {
	name, val, found := strings.Cut(v, "=")
	if !found {
		val = "1"
	}
	d[name] = val
	return nil
}

func main() {
	defines := defineFlags{}
	flag.Var(defines, "D", "macro definition NAME=VALUE (repeatable)")
	outDir := flag.String("o", "traces", "output directory for the Paraver bundle")
	base := flag.String("name", "", "trace base name (default: kernel name)")
	noProfile := flag.Bool("noprofile", false, "disable the profiling unit")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: nymblesim [-D N=V] [-o dir] [-name base] [-noprofile] file.mc arg=value...")
		os.Exit(2)
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	p, err := core.Build(string(srcBytes), core.BuildOptions{Defines: defines})
	if err != nil {
		fatal(err)
	}

	args := sim.Args{
		Ints:    map[string]int64{},
		Floats:  map[string]float64{},
		Buffers: map[string]*sim.Buffer{},
	}
	bufFiles := map[string]string{}
	for _, a := range flag.Args()[1:] {
		name, val, found := strings.Cut(a, "=")
		if !found {
			fatal(fmt.Errorf("argument %q is not name=value", a))
		}
		if strings.HasPrefix(val, "@") {
			bufFiles[name] = val[1:]
			continue
		}
		if iv, err := strconv.ParseInt(val, 10, 64); err == nil {
			args.Ints[name] = iv
			continue
		}
		fv, err := strconv.ParseFloat(val, 64)
		if err != nil {
			fatal(fmt.Errorf("argument %q: %v", a, err))
		}
		args.Floats[name] = fv
	}

	// Size buffers from the map clauses.
	env := map[string]int64{}
	for k, v := range args.Ints {
		env[k] = v
	}
	for _, m := range p.Kernel.Maps {
		if m.Scalar {
			continue
		}
		length, err := m.Len.Eval(env)
		if err != nil {
			fatal(fmt.Errorf("map %s: %v", m.Name, err))
		}
		low := int64(0)
		if m.Low != nil {
			low, _ = m.Low.Eval(env)
		}
		buf := sim.NewZeroBuffer(int(low + length))
		if path, ok := bufFiles[m.Name]; ok {
			data, err := loadF32(path)
			if err != nil {
				fatal(err)
			}
			copy(buf.Words, sim.NewFloatBuffer(data).Words)
		}
		args.Buffers[m.Name] = buf
	}

	cfg := sim.DefaultConfig()
	cfg.Profile.Enabled = !*noProfile
	out, err := p.Run(args, cfg)
	if err != nil {
		fatal(err)
	}

	r := out.Result
	fmt.Printf("kernel %s: %d cycles (%.3f ms at %.0f MHz), %d threads\n",
		p.Kernel.Name, r.Cycles, 1e3*out.Seconds(r.Cycles), out.FmaxMHz, p.Kernel.NumThreads)
	fmt.Printf("stalls: %d, FLOPs: %d, lock acquisitions: %d (contended %d)\n",
		r.TotalStalls(), r.TotalFpOps(), r.LockAcquisitions, r.LockContended)
	if len(r.StallsByLoop) > 0 {
		fmt.Println("stall hotspots by source loop:")
		type row struct {
			name string
			n    int64
		}
		var rows []row
		for name, n := range r.StallsByLoop {
			rows = append(rows, row{name, n})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
		for _, rw := range rows {
			fmt.Printf("  %-20s %12d stall cycles (%.1f%%)\n",
				rw.name, rw.n, 100*float64(rw.n)/float64(r.TotalStalls()))
		}
	}
	fmt.Printf("DRAM: %d transactions, %d B read, %d B written\n",
		r.DRAM.Transactions, r.DRAM.ReadWordsMoved*4, r.DRAM.WriteWordsMoved*4)
	for name, v := range r.ScalarsOut {
		fmt.Printf("result %s = %g\n", name, v)
	}
	for name, v := range r.ScalarsOutInt {
		fmt.Printf("result %s = %d\n", name, v)
	}
	if out.Trace != nil {
		bw := analysis.AvgBandwidthBytesPerCycle(out.Trace)
		fmt.Printf("avg external bandwidth: %.3f B/cycle (%.2f GB/s)\n",
			bw, analysis.BandwidthGBs(bw, out.FmaxMHz))
		fmt.Printf("sustained compute: %.3f GFLOP/s\n", analysis.GFlops(out.Trace, out.FmaxMHz))
		name := *base
		if name == "" {
			name = p.Kernel.Name
		}
		prv, err := out.WriteTrace(*outDir, name)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (+ .pcf/.row)\n", prv)
		fmt.Println("\nadvisor findings:")
		fmt.Print(advisor.Format(advisor.Advise(out, advisor.Thresholds{})))
	}
}

func loadF32(path string) ([]float32, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw)%4 != 0 {
		return nil, fmt.Errorf("%s: size %d is not a multiple of 4", path, len(raw))
	}
	out := make([]float32, len(raw)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nymblesim:", err)
	os.Exit(1)
}
