package paravis

// One benchmark per table/figure of the paper's evaluation (§V). Each
// iteration regenerates the corresponding experiment at a reduced scale
// (cycle-level simulation of 512x512 GEMM is not benchmark material);
// custom metrics report the quantities the paper's figures display, so
// `go test -bench=. -benchmem` doubles as a compact reproduction run.

import (
	"context"
	"testing"

	"paravis/internal/experiments"
	"paravis/internal/profile"
	"paravis/internal/sim"
	"paravis/internal/workloads"
)

func benchOpts(dim int) experiments.Options {
	opts := experiments.DefaultOptions()
	opts.GEMMDim = dim
	opts.Quiet = true
	opts.SimCfg.MaxCycles = 2_000_000_000
	return opts
}

// BenchmarkOverheadGEMM regenerates E1/E2 (§V-B): the hardware footprint of
// all six designs with and without the profiling unit.
func BenchmarkOverheadGEMM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunOverhead(context.Background(), 8, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GeoMeanReg, "geomean-reg-%")
		b.ReportMetric(r.GeoMeanALM, "geomean-alm-%")
		b.ReportMetric(r.MaxReg, "max-reg-%")
	}
}

// BenchmarkFig6StateView regenerates E3: the naive GEMM's state residency
// (paper: ~1.54% critical, ~1.57% spinning).
func BenchmarkFig6StateView(b *testing.B) {
	opts := benchOpts(32)
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig6(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.CriticalPct, "critical-%")
		b.ReportMetric(r.SpinningPct, "spinning-%")
	}
}

// BenchmarkFig7Bandwidth regenerates E4: average achieved memory throughput
// per GEMM version (paper Fig. 7's ordering).
func BenchmarkFig7Bandwidth(b *testing.B) {
	opts := benchOpts(32)
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSpeedups(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Runs[workloads.GEMMNaive].BWBytesPerCycle, "naive-B/cyc")
		b.ReportMetric(r.Runs[workloads.GEMMPartialVec].BWBytesPerCycle, "vec-B/cyc")
		b.ReportMetric(r.Runs[workloads.GEMMDoubleBuffered].BWBytesPerCycle, "dbuf-B/cyc")
	}
}

// BenchmarkGEMMSpeedups regenerates E5 (§V-C): execution-time ratios of the
// five versions (paper: 1.14x, 1.93x step, 5.28x, 19x vs naive).
func BenchmarkGEMMSpeedups(b *testing.B) {
	opts := benchOpts(32)
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSpeedups(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup(workloads.GEMMNoCritical), "v2-speedup")
		b.ReportMetric(r.Speedup(workloads.GEMMBlocked), "v4-speedup")
		b.ReportMetric(r.Speedup(workloads.GEMMDoubleBuffered), "v5-speedup")
	}
}

// BenchmarkFig8Blocked regenerates E6: the blocked version's load/compute
// phase separation (low overlap).
func BenchmarkFig8Blocked(b *testing.B) {
	opts := benchOpts(32)
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunPhases(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.BlockedStats.Overlap(), "blocked-overlap")
	}
}

// BenchmarkFig9DoubleBuffer regenerates E7: the double-buffered version's
// prefetch/compute overlap and its bandwidth advantage.
func BenchmarkFig9DoubleBuffer(b *testing.B) {
	opts := benchOpts(32)
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunPhases(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.DoubleStats.Overlap(), "dbuf-overlap")
		b.ReportMetric(r.DoubleBuffered.BWBytesPerCycle, "dbuf-B/cyc")
	}
}

// BenchmarkFig11to13Pi regenerates E8 (§V-D): pi GFLOP/s scaling with the
// iteration count (paper: 0.146 -> 0.556 -> 1.507).
func BenchmarkFig11to13Pi(b *testing.B) {
	opts := benchOpts(32)
	opts.PiSteps = []int{19_200, 76_800, 192_000}
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunPi(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Runs[0].GFlops, "gflops-small")
		b.ReportMetric(r.Runs[len(r.Runs)-1].GFlops, "gflops-large")
	}
}

// BenchmarkThreadScaling regenerates E9 (§V-A): performance saturates at
// eight threads.
func BenchmarkThreadScaling(b *testing.B) {
	opts := benchOpts(32)
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunThreadScaling(context.Background(), opts, []int{1, 4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.SaturationAt), "saturation-threads")
		b.ReportMetric(float64(r.Cycles[0])/float64(r.Cycles[len(r.Cycles)-1]), "16t-speedup")
	}
}

// --- Ablation benchmarks for the design choices DESIGN.md calls out ---

// BenchmarkAblationSamplePeriod measures trace size versus sampling period
// (the paper: "the higher the period, the more data is produced" — sic, the
// trade-off between resolution and trace volume).
func BenchmarkAblationSamplePeriod(b *testing.B) {
	for _, period := range []int64{256, 1024, 4096} {
		period := period
		b.Run(formatI64(period), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig()
				cfg.MaxCycles = 2_000_000_000
				cfg.Profile.SamplePeriod = period
				r, err := experiments.RunGEMM(context.Background(), workloads.GEMMNoCritical, 32, 8, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(r.Out.Trace.Events)), "event-records")
				b.ReportMetric(float64(r.Out.Result.Prof.FlushedBytes), "flushed-bytes")
			}
		})
	}
}

// BenchmarkAblationProfilingPerturbation measures the runtime cost of the
// profiling unit's flush traffic (paper: negligible impact).
func BenchmarkAblationProfilingPerturbation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on := sim.DefaultConfig()
		on.MaxCycles = 2_000_000_000
		off := on
		off.Profile = profile.Config{Enabled: false}
		rOn, err := experiments.RunGEMM(context.Background(), workloads.GEMMNoCritical, 32, 8, on)
		if err != nil {
			b.Fatal(err)
		}
		rOff, err := experiments.RunGEMM(context.Background(), workloads.GEMMNoCritical, 32, 8, off)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(float64(rOn.Cycles)/float64(rOff.Cycles)-1), "perturbation-%")
	}
}

// BenchmarkAblationDRAMLatency measures how the partial-vectorized (memory
// bound) and blocked (BRAM bound) versions respond to external latency —
// the mechanism behind the paper's blocking recommendation.
func BenchmarkAblationDRAMLatency(b *testing.B) {
	for _, lat := range []int{30, 60, 120} {
		lat := lat
		b.Run(formatI64(int64(lat)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig()
				cfg.MaxCycles = 2_000_000_000
				cfg.DRAM.LatencyCycles = lat
				vec, err := experiments.RunGEMM(context.Background(), workloads.GEMMPartialVec, 32, 8, cfg)
				if err != nil {
					b.Fatal(err)
				}
				blk, err := experiments.RunGEMM(context.Background(), workloads.GEMMBlocked, 32, 8, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(vec.Cycles), "vec-cycles")
				b.ReportMetric(float64(blk.Cycles), "blocked-cycles")
			}
		})
	}
}

// --- Micro-benchmarks for the simulator hot loop ---
//
// These guard the event-driven engine rework: the per-step and per-tick
// allocation counts (b.ReportAllocs) must stay near zero in steady state,
// or the frame/buffer/profile recycling has regressed.

// BenchmarkEngineStep measures the engine's inner loop end to end: each
// iteration simulates a complete small GEMM (the program itself is compiled
// once and cached), and the extra metric reports wall-clock nanoseconds per
// simulated cycle.
func BenchmarkEngineStep(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.MaxCycles = 2_000_000_000
	var simCycles int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunGEMM(context.Background(), workloads.GEMMNoCritical, 16, 8, cfg)
		if err != nil {
			b.Fatal(err)
		}
		simCycles += r.Cycles
	}
	b.StopTimer()
	if simCycles > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(simCycles), "ns/sim-cycle")
	}
}

// BenchmarkProfileTick measures the profiling unit's per-cycle cost: a
// stall-site increment, a compute/memory event, and the Tick that closes
// sampling windows and flushes buffers.
func BenchmarkProfileTick(b *testing.B) {
	const threads = 8
	u := profile.New(profile.DefaultConfig(), threads, func(cycle int64, bytes int) {})
	site := u.SiteID("bench.loop")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := i % threads
		u.AddStallsSite(t, site, 1)
		u.AddCompute(t, 1, 2)
		u.AddMem(t, 64, false)
		u.Tick(int64(i))
	}
}

func formatI64(v int64) string {
	const digits = "0123456789"
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return string(buf[i:])
}
