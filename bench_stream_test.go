package paravis

// Benchmarks for the streaming trace pipeline: profile-to-trace view
// construction and .prv emission, streaming versus materialized. The
// records/s metric is what the ISSUE's acceptance criterion compares;
// -benchmem shows the near-zero steady-state allocation of the streaming
// writer (a handful of fixed buffers per call, none per record).

import (
	"context"
	"io"
	"testing"

	"paravis/internal/experiments"
	"paravis/internal/paraver"
	"paravis/internal/workloads"
)

// benchProfileRun simulates one small GEMM with a fine sample period so
// the unit carries a realistic record mix (state runs, event windows,
// flush-perturbed drains).
func benchProfileRun(b *testing.B) *experiments.GEMMRun {
	b.Helper()
	cfg := benchOpts(24).SimCfg
	cfg.Profile.SamplePeriod = 64
	r, err := experiments.RunGEMM(context.Background(), workloads.GEMMNaive, 24, 8, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkFromProfile measures turning a finished profiling unit into a
// trace: the zero-copy streaming view versus full materialization.
func BenchmarkFromProfile(b *testing.B) {
	r := benchProfileRun(b)
	u, cycles := r.Out.Result.Prof, r.Out.Result.Cycles
	tr := r.Out.Trace
	records := float64(len(tr.States) + len(tr.Events))

	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st := paraver.StreamFromProfile(u, "gemm", cycles)
			if st.NumThreads == 0 {
				b.Fatal("empty stream")
			}
		}
		b.ReportMetric(records*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
	b.Run("materialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := paraver.FromProfile(u, "gemm", cycles)
			if len(tr.States) == 0 {
				b.Fatal("empty trace")
			}
		}
		b.ReportMetric(records*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
}

// BenchmarkTraceWrite measures .prv emission: the streaming writer
// (strconv.AppendInt into a reused buffer, k-way merge straight from the
// per-thread streams) versus the materialized fmt-based reference writer.
func BenchmarkTraceWrite(b *testing.B) {
	r := benchProfileRun(b)
	u, cycles := r.Out.Result.Prof, r.Out.Result.Cycles
	st := paraver.StreamFromProfile(u, "gemm", cycles)
	tr := st.Trace()
	records := float64(len(tr.States) + len(tr.Events))

	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := st.WritePRV(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(records*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
	b.Run("materialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := tr.WritePRV(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(records*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
}
