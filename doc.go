// Package paravis is a from-scratch reproduction of "Extending High-Level
// Synthesis with High-Performance Computing Performance Visualization"
// (Huthmann, Podobas, Sommer, Koch, Sano — IEEE CLUSTER 2020).
//
// The paper extends the Nymble HLS compiler so the generated FPGA
// accelerator carries a hardware profiling unit whose records convert into
// Paraver traces. This module rebuilds the entire stack in Go:
//
//   - internal/minic    — C-subset + OpenMP 4.0 frontend (lexer/parser/sema)
//   - internal/ir       — dataflow IR with loop nests as variable-latency ops
//   - internal/lower    — AST -> IR: SSA, if-conversion, unrolling, deps
//   - internal/schedule — static pipeline scheduling (Nymble's synthesis step)
//   - internal/hw       — compiled datapath representation
//   - internal/sim      — cycle-level Nymble-MT multi-threaded execution model
//   - internal/mem      — Avalon/DRAM/BRAM/preloader memory system
//   - internal/hwsem    — hardware semaphore and barrier
//   - internal/profile  — the paper's profiling unit (states + event counters)
//   - internal/paraver  — .prv/.pcf/.row writer, parser and view analysis
//   - internal/area     — ALM/register/Fmax model for the overhead study
//   - internal/host     — host-side interpreter for code around the region
//   - internal/core     — the public facade tying the flow together
//
// See README.md for a walkthrough, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-vs-measured record of every table and
// figure. The benchmarks in bench_test.go regenerate each experiment.
package paravis
